//! Request parsing and response building for the `/v1/*` endpoints.
//!
//! Requests and responses are plain JSON handled by the workspace's
//! shared [`hmcs_core::json`] module. Parsing is strict: unknown fields
//! are rejected (catching typos like `lambda_per_ms` before they
//! silently fall back to a default), enum fields must match an
//! allow-list, and numeric fields are range-checked by
//! [`SystemConfig`]'s own validation.
//!
//! **Error payloads never echo raw request bytes unescaped.** Every
//! error message — including ones that quote a client-supplied field
//! name — passes through [`json_str`] in [`error_body`], so a body full
//! of quotes and control characters still produces a valid JSON error
//! document.
//!
//! Float formatting uses [`json_num`], which prints the shortest
//! round-tripping decimal: a client that parses `mean_latency_us` back
//! with `str::parse::<f64>()` recovers the model's output **bit for
//! bit**, which is what lets the suite assert served results are
//! identical to in-process `reproduce` output.

use hmcs_core::batch::{self, BatchOptions};
use hmcs_core::config::SystemConfig;
use hmcs_core::error::ModelError;
use hmcs_core::json::{json_num, json_str, parse_json, JsonValue};
use hmcs_core::model::PerformanceReport;
use hmcs_core::optimize::{self, Constraints, DesignSpace, OptimizeError, OptimizeSpec, Workload};
use hmcs_core::scenario::{Scenario, PAPER_LAMBDA_PER_US, PAPER_TOTAL_NODES};
use hmcs_core::service::ServiceTimes;
use hmcs_core::solver;
use hmcs_topology::transmission::Architecture;

/// Hard cap on sweep points per request; larger sweeps must be split
/// (or run offline through `reproduce`), keeping one request from
/// monopolising a worker for minutes.
pub const MAX_SWEEP_POINTS: usize = 4096;

/// A structured API error: HTTP status plus a machine-readable code,
/// a human-readable message and optional structured numeric fields for
/// the JSON error body (e.g. the computed `saturation_lambda` on a
/// `workload_saturated` rejection).
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail. May embed client-supplied text; it is
    /// escaped at serialisation time by [`error_body`].
    pub message: String,
    /// Extra numeric fields rendered into the error object so clients
    /// can act on the rejection without parsing the message.
    pub data: Vec<(&'static str, f64)>,
}

impl ApiError {
    fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        ApiError { status: 400, code, message: message.into(), data: Vec::new() }
    }

    /// Renders this error as its JSON body.
    pub fn body(&self) -> String {
        error_body_with(self.code, &self.message, &self.data)
    }
}

/// Builds the canonical error document. `message` is escaped here —
/// this is the single choke point that keeps client bytes from
/// reaching the wire unescaped.
pub fn error_body(code: &str, message: &str) -> String {
    error_body_with(code, message, &[])
}

/// [`error_body`] plus structured numeric fields. Keys come from the
/// server (static strings) but are escaped anyway; values use the
/// shortest round-trip rendering so clients recover them bit-exactly.
pub fn error_body_with(code: &str, message: &str, data: &[(&'static str, f64)]) -> String {
    let mut out =
        format!(r#"{{"error":{{"code":{},"message":{}"#, json_str(code), json_str(message));
    for (key, value) in data {
        out.push(',');
        out.push_str(&json_str(key));
        out.push(':');
        out.push_str(&json_num(*value));
    }
    out.push_str("}}");
    out
}

/// Which parameter `POST /v1/sweep` varies.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Sweep λ (messages/µs) at a fixed shape.
    Lambda(Vec<f64>),
    /// Sweep the cluster count at fixed total nodes.
    Clusters(Vec<usize>),
    /// Sweep the message size in bytes.
    MessageBytes(Vec<u64>),
}

/// The canonical coalescing key for an evaluate request. `Debug`
/// formatting prints floats as shortest round-tripping decimals, so
/// the key is injective on the config's bits — two requests share a
/// key exactly when they describe the same evaluation.
pub fn evaluate_key(config: &SystemConfig) -> String {
    format!("evaluate/{config:?}")
}

/// The canonical coalescing key for a sweep request.
pub fn sweep_key(config: &SystemConfig, spec: &SweepSpec) -> String {
    format!("sweep/{spec:?}/{config:?}")
}

/// Parses a `POST /v1/evaluate` body into a validated [`SystemConfig`]
/// plus the request's `require_unsaturated` flag (default `false`).
pub fn parse_evaluate(body: &str) -> Result<(SystemConfig, bool), ApiError> {
    let value = parse_json(body).map_err(|e| ApiError::bad_request("invalid_json", e))?;
    let obj = as_request_object(&value)?;
    check_fields(obj, &ALLOWED_CONFIG_FIELDS)?;
    let strict = get_bool(obj, "require_unsaturated")?.unwrap_or(false);
    Ok((config_from(obj)?, strict))
}

/// Parses a `POST /v1/sweep` body into a base config plus sweep spec
/// plus the request's `require_unsaturated` flag (default `false`).
pub fn parse_sweep(body: &str) -> Result<(SystemConfig, SweepSpec, bool), ApiError> {
    let value = parse_json(body).map_err(|e| ApiError::bad_request("invalid_json", e))?;
    let obj = as_request_object(&value)?;
    let mut allowed: Vec<&str> = ALLOWED_CONFIG_FIELDS.to_vec();
    allowed.extend_from_slice(&["parameter", "values"]);
    check_fields(obj, &allowed)?;

    let parameter = get_str(obj, "parameter")?
        .ok_or_else(|| ApiError::bad_request("missing_field", "'parameter' is required"))?;
    let values = match obj.iter().find(|(k, _)| k == "values") {
        Some((_, JsonValue::Arr(items))) => items,
        Some(_) => return Err(ApiError::bad_request("invalid_field", "'values' must be an array")),
        None => return Err(ApiError::bad_request("missing_field", "'values' is required")),
    };
    if values.is_empty() {
        return Err(ApiError::bad_request("invalid_field", "'values' must be non-empty"));
    }
    if values.len() > MAX_SWEEP_POINTS {
        return Err(ApiError::bad_request(
            "sweep_too_large",
            format!("'values' has {} points; the cap is {MAX_SWEEP_POINTS}", values.len()),
        ));
    }

    let spec = match parameter.as_str() {
        "lambda" => SweepSpec::Lambda(numeric_values(values, "values")?),
        "clusters" => SweepSpec::Clusters(
            integer_values(values, "values")?.into_iter().map(|v| v as usize).collect(),
        ),
        "message_bytes" => SweepSpec::MessageBytes(integer_values(values, "values")?),
        other => {
            return Err(ApiError::bad_request(
                "invalid_field",
                format!(
                    "unknown sweep parameter '{other}'; expected lambda, clusters or message_bytes"
                ),
            ))
        }
    };
    let config = config_from(obj)?;
    let strict = get_bool(obj, "require_unsaturated")?.unwrap_or(false);
    Ok((config, spec, strict))
}

/// The saturation rate of a config's bottleneck tier, or `None` when
/// the config cannot even produce service times (that failure surfaces
/// through the normal evaluation path instead).
fn saturation_of(config: &SystemConfig) -> Option<f64> {
    let service = ServiceTimes::compute(config).ok()?;
    Some(solver::saturation_lambda(config, &service))
}

/// The structured 422 for a workload at or above saturation. The body
/// carries both the offered rate and the computed boundary so clients
/// can back off without parsing prose.
fn saturated_error(lambda_per_us: f64, saturation_lambda: f64, context: &str) -> ApiError {
    ApiError {
        status: 422,
        code: "workload_saturated",
        message: format!(
            "offered lambda_per_us {} is at or above the saturation rate {}{context}; \
             the finite-population model still converges there, but the request \
             asked for require_unsaturated",
            json_num(lambda_per_us),
            json_num(saturation_lambda),
        ),
        data: vec![("lambda_per_us", lambda_per_us), ("saturation_lambda", saturation_lambda)],
    }
}

/// Rejects a strict (`require_unsaturated`) evaluate request whose λ is
/// at or above the bottleneck saturation rate.
pub fn check_unsaturated(config: &SystemConfig) -> Result<(), ApiError> {
    if let Some(sat) = saturation_of(config) {
        if config.lambda_per_us >= sat {
            return Err(saturated_error(config.lambda_per_us, sat, ""));
        }
    }
    Ok(())
}

/// Rejects a strict sweep request if **any** point would run at or
/// above saturation. Per-point configs mirror the constructions in
/// [`hmcs_core::sweep`]; shape errors (e.g. a cluster count that does
/// not divide the node total) are left for the sweep itself to report.
pub fn check_sweep_unsaturated(config: &SystemConfig, spec: &SweepSpec) -> Result<(), ApiError> {
    match spec {
        SweepSpec::Lambda(values) => {
            // Saturation is λ-independent: one boundary covers every point.
            if let Some(sat) = saturation_of(config) {
                for &lambda in values {
                    if lambda >= sat {
                        return Err(sweep_point_error(saturated_error(lambda, sat, ""), lambda));
                    }
                }
            }
        }
        SweepSpec::Clusters(values) => {
            let total = config.total_nodes();
            for &c in values {
                if c == 0 || !total.is_multiple_of(c) {
                    continue;
                }
                let mut cfg = *config;
                cfg.clusters = c;
                cfg.nodes_per_cluster = total / c;
                check_unsaturated(&cfg).map_err(|e| sweep_point_error(e, c as f64))?;
            }
        }
        SweepSpec::MessageBytes(values) => {
            for &m in values {
                let cfg = config.with_message_bytes(m);
                check_unsaturated(&cfg).map_err(|e| sweep_point_error(e, m as f64))?;
            }
        }
    }
    Ok(())
}

/// Tags a per-point saturation rejection with the sweep x-value.
fn sweep_point_error(mut err: ApiError, x: f64) -> ApiError {
    err.message.push_str(" (sweep point)");
    err.data.push(("sweep_x", x));
    err
}

/// Maps a model failure to its API error. If the config's service
/// times are computable and the offered λ is at or above saturation,
/// the failure is reported as the structured `workload_saturated`
/// error (with the boundary in the body) rather than an opaque
/// `evaluation_failed` — this is the diagnosis a capacity planner
/// actually needs.
fn evaluation_failure(config: &SystemConfig, e: ModelError) -> ApiError {
    if let Some(sat) = saturation_of(config) {
        if config.lambda_per_us >= sat {
            return saturated_error(config.lambda_per_us, sat, "");
        }
    }
    ApiError { status: 422, code: "evaluation_failed", message: e.to_string(), data: Vec::new() }
}

/// Result of one kernel lane, as produced by
/// [`hmcs_core::kernel::evaluate_batch`] — the unit the server's
/// micro-batcher transports between requests and the shared window
/// solve.
pub type PointResult = Result<(PerformanceReport, hmcs_core::batch::EvalStats), ModelError>;

/// Evaluates one config and renders the response document.
pub fn evaluate_response(config: &SystemConfig) -> Result<String, ApiError> {
    evaluate_response_from(config, batch::evaluate_one(config, None, None))
}

/// Renders the evaluate response from an already-solved kernel lane.
/// The kernel's lanes are bit-identical to [`batch::evaluate_one`]
/// (same FP schedule, same error variants), so a response assembled
/// from a shared micro-batch window is byte-identical to the unbatched
/// [`evaluate_response`].
pub fn evaluate_response_from(
    config: &SystemConfig,
    result: PointResult,
) -> Result<String, ApiError> {
    let (report, _stats) = result.map_err(|e| evaluation_failure(config, e))?;
    Ok(render_evaluate(config, &report))
}

/// Builds the per-point configs a sweep evaluates, mirroring the
/// constructions in [`hmcs_core::sweep`] exactly (same shape errors for
/// non-divisor cluster counts, same field substitutions), so that
/// solving them through any per-item kernel batch reproduces the
/// sweep's points bit for bit.
pub fn sweep_configs(
    config: &SystemConfig,
    spec: &SweepSpec,
) -> Result<Vec<SystemConfig>, ApiError> {
    let failed = |e: ModelError| evaluation_failure(config, e);
    match spec {
        SweepSpec::Lambda(values) => {
            config.validate().map_err(failed)?;
            Ok(values.iter().map(|&l| config.with_lambda(l)).collect())
        }
        SweepSpec::Clusters(values) => {
            let total = config.total_nodes();
            values
                .iter()
                .map(|&c| {
                    if c == 0 || !total.is_multiple_of(c) {
                        return Err(failed(ModelError::InvalidConfig {
                            name: "cluster_counts",
                            reason: "every cluster count must divide the total node count",
                        }));
                    }
                    let mut cfg = *config;
                    cfg.clusters = c;
                    cfg.nodes_per_cluster = total / c;
                    Ok(cfg)
                })
                .collect()
        }
        SweepSpec::MessageBytes(values) => {
            Ok(values.iter().map(|&m| config.with_message_bytes(m)).collect())
        }
    }
}

/// Runs the requested sweep **sequentially** (the worker pool provides
/// request-level parallelism; nesting the batch engine's own pool
/// inside each request would oversubscribe the host) and renders the
/// response document.
pub fn sweep_response(config: &SystemConfig, spec: &SweepSpec) -> Result<String, ApiError> {
    let configs = sweep_configs(config, spec)?;
    let results = batch::evaluate_many(&configs, BatchOptions::sequential());
    sweep_response_from(config, spec, results)
}

/// Renders the sweep response from already-solved kernel lanes, one
/// per [`sweep_configs`] point in order. This is the reassembly half of
/// the serving micro-batch: the window solves every gathered point in
/// one kernel call, and each sweep request renders its own slice. The
/// first failed lane aborts the whole sweep with the same error the
/// in-process [`hmcs_core::sweep`] functions would surface.
pub fn sweep_response_from(
    config: &SystemConfig,
    spec: &SweepSpec,
    results: Vec<PointResult>,
) -> Result<String, ApiError> {
    let failed = |e: ModelError| evaluation_failure(config, e);
    let (parameter, xs): (&str, Vec<f64>) = match spec {
        SweepSpec::Lambda(values) => ("lambda", values.clone()),
        SweepSpec::Clusters(values) => ("clusters", values.iter().map(|&c| c as f64).collect()),
        SweepSpec::MessageBytes(values) => {
            ("message_bytes", values.iter().map(|&m| m as f64).collect())
        }
    };
    debug_assert_eq!(xs.len(), results.len(), "one lane per sweep point");
    let points: Vec<(f64, PerformanceReport)> = xs
        .into_iter()
        .zip(results)
        .map(|(x, r)| r.map(|(report, _stats)| (x, report)).map_err(failed))
        .collect::<Result<_, _>>()?;

    let mut out = String::with_capacity(256 + points.len() * 160);
    out.push_str("{\"schema\":\"hmcs-serve-sweep/1\",\"parameter\":");
    out.push_str(&json_str(parameter));
    out.push_str(",\"config\":");
    push_config(&mut out, config);
    out.push_str(",\"points\":[");
    for (i, (x, report)) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"x\":");
        out.push_str(&json_num(*x));
        out.push_str(",\"mean_latency_us\":");
        out.push_str(&json_num(report.latency.mean_message_latency_us));
        out.push_str(",\"throughput_per_us\":");
        out.push_str(&json_num(report.throughput_per_us));
        out.push_str(",\"bottleneck_utilization\":");
        out.push_str(&json_num(report.equilibrium.bottleneck_utilization()));
        out.push_str(",\"retained_fraction\":");
        out.push_str(&json_num(report.equilibrium.retained_fraction));
        out.push('}');
    }
    out.push_str("]}");
    Ok(out)
}

/// Renders the full evaluate response document.
pub fn render_evaluate(config: &SystemConfig, report: &PerformanceReport) -> String {
    let eq = &report.equilibrium;
    let lat = &report.latency;
    let mut out = String::with_capacity(640);
    out.push_str("{\"schema\":\"hmcs-serve-evaluate/1\",\"config\":");
    push_config(&mut out, config);
    out.push_str(",\"latency_us\":{\"mean\":");
    out.push_str(&json_num(lat.mean_message_latency_us));
    out.push_str(",\"internal\":");
    out.push_str(&json_num(lat.internal_latency_us));
    out.push_str(",\"external\":");
    out.push_str(&json_num(lat.external_latency_us));
    out.push_str(",\"sojourn_icn1\":");
    out.push_str(&json_num(lat.sojourn_icn1_us));
    out.push_str(",\"sojourn_ecn1\":");
    out.push_str(&json_num(lat.sojourn_ecn1_us));
    out.push_str(",\"sojourn_icn2\":");
    out.push_str(&json_num(lat.sojourn_icn2_us));
    out.push_str("},\"external_probability\":");
    out.push_str(&json_num(lat.external_probability));
    out.push_str(",\"utilization\":{\"icn1\":");
    out.push_str(&json_num(eq.icn1.utilization));
    out.push_str(",\"ecn1\":");
    out.push_str(&json_num(eq.ecn1.utilization));
    out.push_str(",\"icn2\":");
    out.push_str(&json_num(eq.icn2.utilization));
    out.push_str(",\"bottleneck\":");
    out.push_str(&json_num(eq.bottleneck_utilization()));
    out.push_str("},\"throughput_per_us\":");
    out.push_str(&json_num(report.throughput_per_us));
    out.push_str(",\"solver\":{\"iterations\":");
    out.push_str(&eq.solver_iterations.to_string());
    out.push_str(",\"lambda_eff\":");
    out.push_str(&json_num(eq.lambda_eff));
    out.push_str(",\"retained_fraction\":");
    out.push_str(&json_num(eq.retained_fraction));
    out.push_str(",\"total_waiting\":");
    out.push_str(&json_num(eq.total_waiting));
    out.push_str("}}");
    out
}

/// An optimize request: the spec plus whether to run the
/// gradient-pruned walk instead of the exhaustive one. The two produce
/// bit-identical frontiers; `prune` only changes how much of the space
/// is actually solved (reported in the `pruned` diagnostic).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// The parsed optimization spec.
    pub spec: OptimizeSpec,
    /// Run [`optimize::optimize_pruned`] instead of the exhaustive
    /// [`optimize::optimize`].
    pub prune: bool,
}

/// The canonical coalescing key for an optimize request. Like
/// [`evaluate_key`], `Debug` formatting is injective on the spec's
/// bits (floats print as shortest round-tripping decimals). `prune`
/// participates in the key: pruned and exhaustive runs return the same
/// frontier but different work-accounting diagnostics, so their
/// documents must not coalesce.
pub fn optimize_key(request: &OptimizeRequest) -> String {
    format!("optimize/prune={}/{:?}", request.prune, request.spec)
}

/// Parses a `POST /v1/optimize` body into an [`OptimizeRequest`] over
/// the paper's preset design space.
///
/// Accepted fields: `slo_ms` (number, > 0), `budget_usd` (number, > 0),
/// `require_unsaturated` (boolean), `prune` (boolean — walk the space
/// with certified-lower-bound pruning; same frontier, less work) and
/// `workload` (object with `scenario`, `total_nodes`, `message_bytes`,
/// `lambda_per_us`). All are optional; the defaults are the paper's
/// Case-1 workload with no constraints, exhaustively evaluated.
pub fn parse_optimize(body: &str) -> Result<OptimizeRequest, ApiError> {
    let value = parse_json(body).map_err(|e| ApiError::bad_request("invalid_json", e))?;
    let obj = as_request_object(&value)?;
    check_fields(obj, &["slo_ms", "budget_usd", "require_unsaturated", "prune", "workload"])?;

    let slo_ms = get_f64(obj, "slo_ms")?;
    if let Some(v) = slo_ms {
        if !(v.is_finite() && v > 0.0) {
            return Err(ApiError::bad_request("invalid_field", "'slo_ms' must be finite and > 0"));
        }
    }
    let budget_usd = get_f64(obj, "budget_usd")?;
    if let Some(v) = budget_usd {
        if !(v.is_finite() && v > 0.0) {
            return Err(ApiError::bad_request(
                "invalid_field",
                "'budget_usd' must be finite and > 0",
            ));
        }
    }
    let require_unsaturated = get_bool(obj, "require_unsaturated")?.unwrap_or(false);
    let prune = get_bool(obj, "prune")?.unwrap_or(false);

    let mut workload = Workload::paper_default();
    match obj.iter().find(|(k, _)| k == "workload") {
        None => {}
        Some((_, JsonValue::Obj(wl))) => {
            check_fields(wl, &["scenario", "total_nodes", "message_bytes", "lambda_per_us"])?;
            workload.scenario = match get_str(wl, "scenario")?.as_deref() {
                None | Some("case1") => Scenario::Case1,
                Some("case2") => Scenario::Case2,
                Some(other) => {
                    return Err(ApiError::bad_request(
                        "invalid_field",
                        format!("unknown scenario '{other}'; expected case1 or case2"),
                    ))
                }
            };
            if let Some(n) = get_u64(wl, "total_nodes")? {
                workload.total_nodes = n as usize;
            }
            if let Some(m) = get_u64(wl, "message_bytes")? {
                workload.message_bytes = m;
            }
            if let Some(l) = get_f64(wl, "lambda_per_us")? {
                workload.lambda_per_us = l;
            }
        }
        Some(_) => {
            return Err(ApiError::bad_request("invalid_field", "'workload' must be an object"))
        }
    }

    let space = DesignSpace::paper_default(workload.total_nodes);
    Ok(OptimizeRequest {
        spec: OptimizeSpec {
            workload,
            constraints: Constraints {
                slo_latency_us: slo_ms.map(|v| v * 1000.0),
                budget_usd,
                require_unsaturated,
            },
            space,
        },
        prune,
    })
}

/// Runs the optimizer **sequentially** (same reasoning as
/// [`sweep_response`]: the worker pool already provides request-level
/// parallelism) and renders the response document. With
/// `request.prune` the certified-pruning walk runs instead; its
/// frontier is bit-identical, only the work-accounting diagnostics
/// (`evaluated`, `above_slo`, `dominated`, `pruned`) reflect the
/// skipped points.
pub fn optimize_response(request: &OptimizeRequest) -> Result<String, ApiError> {
    let spec = &request.spec;
    let run = if request.prune { optimize::optimize_pruned } else { optimize::optimize };
    let outcome = run(spec, BatchOptions::sequential()).map_err(|e| match e {
        OptimizeError::Model(inner) => ApiError {
            status: 422,
            code: "evaluation_failed",
            message: inner.to_string(),
            data: Vec::new(),
        },
        other => ApiError::bad_request("invalid_config", other.to_string()),
    })?;

    let mut out = String::with_capacity(512 + outcome.frontier.len() * 320);
    out.push_str("{\"schema\":\"hmcs-serve-optimize/1\",\"workload\":{\"scenario\":");
    out.push_str(&json_str(match spec.workload.scenario {
        Scenario::Case1 => "case1",
        Scenario::Case2 => "case2",
    }));
    out.push_str(",\"total_nodes\":");
    out.push_str(&spec.workload.total_nodes.to_string());
    out.push_str(",\"message_bytes\":");
    out.push_str(&spec.workload.message_bytes.to_string());
    out.push_str(",\"lambda_per_us\":");
    out.push_str(&json_num(spec.workload.lambda_per_us));
    out.push_str("},\"constraints\":{\"slo_ms\":");
    push_opt_num(&mut out, spec.constraints.slo_latency_us.map(|v| v / 1000.0));
    out.push_str(",\"budget_usd\":");
    push_opt_num(&mut out, spec.constraints.budget_usd);
    out.push_str(",\"require_unsaturated\":");
    out.push_str(if spec.constraints.require_unsaturated { "true" } else { "false" });
    out.push_str("},\"space_size\":");
    out.push_str(&outcome.space_size.to_string());
    out.push_str(",\"evaluated\":");
    out.push_str(&outcome.evaluated.to_string());
    out.push_str(",\"feasible\":");
    out.push_str(&outcome.feasible.to_string());
    let d = &outcome.diagnostics;
    out.push_str(",\"diagnostics\":{\"invalid\":");
    out.push_str(&d.invalid.to_string());
    out.push_str(",\"saturated\":");
    out.push_str(&d.saturated.to_string());
    out.push_str(",\"over_budget\":");
    out.push_str(&d.over_budget.to_string());
    out.push_str(",\"failed\":");
    out.push_str(&d.failed.to_string());
    out.push_str(",\"above_slo\":");
    out.push_str(&d.above_slo.to_string());
    out.push_str(",\"dominated\":");
    out.push_str(&d.dominated.to_string());
    out.push_str(",\"pruned\":");
    out.push_str(&d.pruned.to_string());
    out.push_str("},\"frontier\":[");
    for (i, point) in outcome.frontier.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_frontier_point(&mut out, point);
    }
    out.push_str("],\"cheapest_feasible\":");
    match outcome.cheapest_feasible() {
        Some(point) => push_frontier_point(&mut out, point),
        None => out.push_str("null"),
    }
    out.push('}');
    Ok(out)
}

fn push_opt_num(out: &mut String, value: Option<f64>) {
    match value {
        Some(v) => out.push_str(&json_num(v)),
        None => out.push_str("null"),
    }
}

/// Renders one frontier point with the same field names (and, for
/// floats, the same shortest-round-trip digits) as the columns of the
/// `reproduce optimize` CSVs — this is what makes served frontiers
/// byte-comparable to the offline artefacts.
fn push_frontier_point(out: &mut String, point: &optimize::EvaluatedDesign) {
    let cfg = &point.design.config;
    out.push_str("{\"design\":");
    out.push_str(&json_str(&point.design.key()));
    out.push_str(",\"clusters\":");
    out.push_str(&cfg.clusters.to_string());
    out.push_str(",\"nodes_per_cluster\":");
    out.push_str(&cfg.nodes_per_cluster.to_string());
    out.push_str(",\"intra\":");
    out.push_str(&json_str(cfg.icn1.name));
    out.push_str(",\"inter\":");
    out.push_str(&json_str(cfg.ecn1.name));
    out.push_str(",\"ports\":");
    out.push_str(&cfg.switch.ports().to_string());
    out.push_str(",\"architecture\":");
    out.push_str(&json_str(optimize::arch_code(cfg.architecture)));
    out.push_str(",\"switches\":");
    out.push_str(&point.design.total_switches().to_string());
    out.push_str(",\"cost_usd\":");
    out.push_str(&json_num(point.cost_usd));
    out.push_str(",\"latency_us\":");
    out.push_str(&json_num(point.latency_us));
    out.push_str(",\"throughput_per_us\":");
    out.push_str(&json_num(point.throughput_per_us));
    out.push_str(",\"retained_fraction\":");
    out.push_str(&json_num(point.retained_fraction));
    out.push_str(",\"bottleneck_utilization\":");
    out.push_str(&json_num(point.bottleneck_utilization));
    out.push_str(",\"saturation_lambda\":");
    out.push_str(&json_num(point.saturation_lambda));
    out.push('}');
}

const ALLOWED_CONFIG_FIELDS: [&str; 7] = [
    "scenario",
    "architecture",
    "clusters",
    "nodes_per_cluster",
    "message_bytes",
    "lambda_per_us",
    "require_unsaturated",
];

fn as_request_object(value: &JsonValue) -> Result<&[(String, JsonValue)], ApiError> {
    match value {
        JsonValue::Obj(fields) => Ok(fields),
        _ => Err(ApiError::bad_request("invalid_json", "request body must be a JSON object")),
    }
}

/// Rejects fields outside `allowed`. The offending name is quoted in
/// the message — client bytes — and is escaped downstream by
/// [`error_body`].
fn check_fields(obj: &[(String, JsonValue)], allowed: &[&str]) -> Result<(), ApiError> {
    for (key, _) in obj {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad_request(
                "unknown_field",
                format!("unknown field '{key}'; expected one of {}", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn get_str(obj: &[(String, JsonValue)], key: &str) -> Result<Option<String>, ApiError> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Str(s))) => Ok(Some(s.clone())),
        Some(_) => Err(ApiError::bad_request("invalid_field", format!("'{key}' must be a string"))),
    }
}

fn get_u64(obj: &[(String, JsonValue)], key: &str) -> Result<Option<u64>, ApiError> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, v)) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(ApiError::bad_request(
                "invalid_field",
                format!("'{key}' must be a non-negative integer"),
            )),
        },
    }
}

fn get_f64(obj: &[(String, JsonValue)], key: &str) -> Result<Option<f64>, ApiError> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Num(x))) => Ok(Some(*x)),
        Some(_) => Err(ApiError::bad_request("invalid_field", format!("'{key}' must be a number"))),
    }
}

fn get_bool(obj: &[(String, JsonValue)], key: &str) -> Result<Option<bool>, ApiError> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Bool(b))) => Ok(Some(*b)),
        Some(_) => {
            Err(ApiError::bad_request("invalid_field", format!("'{key}' must be a boolean")))
        }
    }
}

fn numeric_values(items: &[JsonValue], key: &str) -> Result<Vec<f64>, ApiError> {
    items
        .iter()
        .map(|v| match v {
            JsonValue::Num(x) => Ok(*x),
            _ => Err(ApiError::bad_request(
                "invalid_field",
                format!("'{key}' entries must be numbers"),
            )),
        })
        .collect()
}

fn integer_values(items: &[JsonValue], key: &str) -> Result<Vec<u64>, ApiError> {
    items
        .iter()
        .map(|v| {
            v.as_u64().ok_or_else(|| {
                ApiError::bad_request(
                    "invalid_field",
                    format!("'{key}' entries must be non-negative integers"),
                )
            })
        })
        .collect()
}

fn config_from(obj: &[(String, JsonValue)]) -> Result<SystemConfig, ApiError> {
    let scenario = match get_str(obj, "scenario")?.as_deref() {
        None | Some("case1") => Scenario::Case1,
        Some("case2") => Scenario::Case2,
        Some(other) => {
            return Err(ApiError::bad_request(
                "invalid_field",
                format!("unknown scenario '{other}'; expected case1 or case2"),
            ))
        }
    };
    let architecture = match get_str(obj, "architecture")?.as_deref() {
        None | Some("nonblocking") => Architecture::NonBlocking,
        Some("blocking") => Architecture::Blocking,
        Some(other) => {
            return Err(ApiError::bad_request(
                "invalid_field",
                format!("unknown architecture '{other}'; expected nonblocking or blocking"),
            ))
        }
    };
    let clusters = get_u64(obj, "clusters")?
        .ok_or_else(|| ApiError::bad_request("missing_field", "'clusters' is required"))?
        as usize;
    let nodes_per_cluster = match get_u64(obj, "nodes_per_cluster")? {
        Some(n) => n as usize,
        None => {
            if clusters == 0 || !PAPER_TOTAL_NODES.is_multiple_of(clusters) {
                return Err(ApiError::bad_request(
                    "invalid_field",
                    format!(
                        "'clusters' = {clusters} does not divide the default \
                         {PAPER_TOTAL_NODES} total nodes; pass nodes_per_cluster explicitly"
                    ),
                ));
            }
            PAPER_TOTAL_NODES / clusters
        }
    };
    let message_bytes = get_u64(obj, "message_bytes")?.unwrap_or(1024);
    let lambda_per_us = get_f64(obj, "lambda_per_us")?.unwrap_or(PAPER_LAMBDA_PER_US);

    SystemConfig::new(
        clusters,
        nodes_per_cluster,
        message_bytes,
        lambda_per_us,
        scenario,
        architecture,
    )
    .map_err(|e| ApiError::bad_request("invalid_config", e.to_string()))
}

fn push_config(out: &mut String, config: &SystemConfig) {
    out.push_str("{\"clusters\":");
    out.push_str(&config.clusters.to_string());
    out.push_str(",\"nodes_per_cluster\":");
    out.push_str(&config.nodes_per_cluster.to_string());
    out.push_str(",\"message_bytes\":");
    out.push_str(&config.message_bytes.to_string());
    out.push_str(",\"lambda_per_us\":");
    out.push_str(&json_num(config.lambda_per_us));
    out.push_str(",\"architecture\":");
    out.push_str(&json_str(match config.architecture {
        Architecture::NonBlocking => "nonblocking",
        Architecture::Blocking => "blocking",
    }));
    out.push_str(",\"icn1\":");
    out.push_str(&json_str(config.icn1.name));
    out.push_str(",\"ecn1\":");
    out.push_str(&json_str(config.ecn1.name));
    out.push_str(",\"icn2\":");
    out.push_str(&json_str(config.icn2.name));
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::model::AnalyticalModel;

    #[test]
    fn evaluate_accepts_minimal_and_full_requests() {
        let (cfg, strict) = parse_evaluate(r#"{"clusters": 16}"#).unwrap();
        assert_eq!(cfg.clusters, 16);
        assert_eq!(cfg.nodes_per_cluster, 16);
        assert_eq!(cfg.message_bytes, 1024);
        assert_eq!(cfg.lambda_per_us, PAPER_LAMBDA_PER_US);
        assert_eq!(cfg.architecture, Architecture::NonBlocking);
        assert!(!strict, "require_unsaturated defaults to false");

        let (cfg, strict) = parse_evaluate(
            r#"{"scenario":"case2","architecture":"blocking","clusters":8,
                "nodes_per_cluster":4,"message_bytes":512,"lambda_per_us":1e-4,
                "require_unsaturated":true}"#,
        )
        .unwrap();
        assert_eq!(cfg.clusters, 8);
        assert_eq!(cfg.nodes_per_cluster, 4);
        assert_eq!(cfg.message_bytes, 512);
        assert_eq!(cfg.lambda_per_us, 1e-4);
        assert_eq!(cfg.architecture, Architecture::Blocking);
        assert_eq!(cfg.icn1.name, "Fast Ethernet");
        assert!(strict);

        let err = parse_evaluate(r#"{"clusters":16,"require_unsaturated":1}"#).unwrap_err();
        assert_eq!(err.code, "invalid_field");
    }

    #[test]
    fn evaluate_rejects_unknown_fields_and_bad_values() {
        let err = parse_evaluate(r#"{"clusters":4,"lambda_per_ms":0.25}"#).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        assert!(err.message.contains("lambda_per_ms"));

        let err = parse_evaluate(r#"{"clusters":0}"#).unwrap_err();
        assert_eq!(err.status, 400);

        let err = parse_evaluate(r#"{"clusters":3}"#).unwrap_err();
        assert!(err.message.contains("does not divide"), "{}", err.message);

        let err = parse_evaluate(r#"{"clusters":4,"scenario":"case9"}"#).unwrap_err();
        assert_eq!(err.code, "invalid_field");

        let err = parse_evaluate(r#"not json"#).unwrap_err();
        assert_eq!(err.code, "invalid_json");

        // Duplicate keys are a parse error (RFC 8259 strictness lives
        // in the shared parser).
        let err = parse_evaluate(r#"{"clusters":4,"clusters":8}"#).unwrap_err();
        assert_eq!(err.code, "invalid_json");
    }

    #[test]
    fn error_bodies_escape_client_bytes() {
        // A field name full of quotes, backslashes and control bytes
        // must still serialise to a valid JSON document.
        let body = "{\"evil\\\"}{\\u0001\": 1, \"clusters\": 4}";
        let err = parse_evaluate(body).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        let rendered = err.body();
        let reparsed = parse_json(&rendered).expect("error body must be valid JSON");
        let msg = reparsed.get("error").and_then(|e| e.get("message")).and_then(|m| m.as_str());
        let msg = msg.expect("error.message present");
        assert!(msg.contains("evil\"}{\u{1}"), "raw bytes preserved in the decoded message");
        assert!(rendered.contains("\\u0001"), "control byte escaped on the wire: {rendered}");
        assert!(!rendered.contains('\u{1}'), "no raw control bytes on the wire");
    }

    #[test]
    fn sweep_parses_all_three_parameters_and_caps_size() {
        let (cfg, spec, strict) =
            parse_sweep(r#"{"clusters":16,"parameter":"lambda","values":[1e-4,2e-4]}"#).unwrap();
        assert_eq!(cfg.clusters, 16);
        assert_eq!(spec, SweepSpec::Lambda(vec![1e-4, 2e-4]));
        assert!(!strict);

        let (_, spec, _) =
            parse_sweep(r#"{"clusters":16,"parameter":"clusters","values":[4,16,64]}"#).unwrap();
        assert_eq!(spec, SweepSpec::Clusters(vec![4, 16, 64]));

        let (_, spec, strict) = parse_sweep(
            r#"{"clusters":16,"parameter":"message_bytes","values":[256,1024],
                "require_unsaturated":true}"#,
        )
        .unwrap();
        assert_eq!(spec, SweepSpec::MessageBytes(vec![256, 1024]));
        assert!(strict);

        let err = parse_sweep(r#"{"clusters":16,"parameter":"lambda","values":[]}"#).unwrap_err();
        assert_eq!(err.code, "invalid_field");

        let big: Vec<String> = (0..=MAX_SWEEP_POINTS).map(|i| format!("{}e-6", i + 1)).collect();
        let body =
            format!(r#"{{"clusters":16,"parameter":"lambda","values":[{}]}}"#, big.join(","));
        let err = parse_sweep(&body).unwrap_err();
        assert_eq!(err.code, "sweep_too_large");
    }

    #[test]
    fn evaluate_response_is_bit_identical_to_in_process_evaluation() {
        let (cfg, _) = parse_evaluate(r#"{"clusters":16,"architecture":"blocking"}"#).unwrap();
        let body = evaluate_response(&cfg).unwrap();
        let doc = parse_json(&body).unwrap();
        let served = doc
            .get("latency_us")
            .and_then(|l| l.get("mean"))
            .and_then(|m| m.as_num())
            .expect("latency_us.mean present");
        let direct = AnalyticalModel::evaluate(&cfg).unwrap();
        assert_eq!(
            served.to_bits(),
            direct.latency.mean_message_latency_us.to_bits(),
            "served latency must round-trip bit-identically"
        );
    }

    #[test]
    fn sweep_response_matches_individual_evaluations() {
        let (cfg, spec, _) =
            parse_sweep(r#"{"clusters":16,"parameter":"clusters","values":[4,64]}"#).unwrap();
        let body = sweep_response(&cfg, &spec).unwrap();
        let doc = parse_json(&body).unwrap();
        let points = doc.get("points").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(points.len(), 2);
        for (point, clusters) in points.iter().zip([4usize, 64]) {
            let x = point.get("x").and_then(|x| x.as_num()).unwrap();
            assert_eq!(x as usize, clusters);
            let served = point.get("mean_latency_us").and_then(|m| m.as_num()).unwrap();
            let (direct_cfg, _) = parse_evaluate(&format!(r#"{{"clusters":{clusters}}}"#)).unwrap();
            let direct = AnalyticalModel::evaluate(&direct_cfg).unwrap();
            assert_eq!(served.to_bits(), direct.latency.mean_message_latency_us.to_bits());
        }
    }

    #[test]
    fn coalescing_keys_distinguish_configs_and_endpoints() {
        let (a, _) = parse_evaluate(r#"{"clusters":16}"#).unwrap();
        let (b, _) = parse_evaluate(r#"{"clusters":32}"#).unwrap();
        let (a2, _) = parse_evaluate(r#"{"clusters":16,"message_bytes":1024}"#).unwrap();
        assert_ne!(evaluate_key(&a), evaluate_key(&b));
        assert_eq!(evaluate_key(&a), evaluate_key(&a2), "defaults normalise to the same key");
        let spec = SweepSpec::Lambda(vec![1e-4]);
        assert_ne!(evaluate_key(&a), sweep_key(&a, &spec));

        let opt = parse_optimize(r#"{"slo_ms":30}"#).unwrap();
        let opt2 = parse_optimize(r#"{"slo_ms":25}"#).unwrap();
        assert_ne!(optimize_key(&opt), optimize_key(&opt2));
        let pruned = parse_optimize(r#"{"slo_ms":30,"prune":true}"#).unwrap();
        assert_ne!(
            optimize_key(&opt),
            optimize_key(&pruned),
            "pruned runs report different diagnostics, so they must not coalesce"
        );
    }

    #[test]
    fn strict_saturated_workload_is_a_structured_422() {
        // The paper's default λ is far above the open-queue saturation
        // rate of every preset shape, so a strict request must bounce
        // with the boundary in the body.
        let (cfg, strict) =
            parse_evaluate(r#"{"clusters":16,"require_unsaturated":true}"#).unwrap();
        assert!(strict);
        let err = check_unsaturated(&cfg).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, "workload_saturated");
        let sat = err
            .data
            .iter()
            .find(|(k, _)| *k == "saturation_lambda")
            .map(|(_, v)| *v)
            .expect("saturation_lambda present");
        let service = ServiceTimes::compute(&cfg).unwrap();
        assert_eq!(
            sat.to_bits(),
            solver::saturation_lambda(&cfg, &service).to_bits(),
            "reported boundary matches the solver's bit for bit"
        );
        let doc = parse_json(&err.body()).expect("error body is valid JSON");
        let reported =
            doc.get("error").and_then(|e| e.get("saturation_lambda")).and_then(|v| v.as_num());
        assert_eq!(reported.unwrap().to_bits(), sat.to_bits());

        // A λ safely under the boundary passes the strict check.
        let under = cfg.with_lambda(sat * 0.5);
        assert!(check_unsaturated(&under).is_ok());

        // Non-strict evaluation of the same saturated workload still
        // succeeds: the finite-population model self-throttles.
        assert!(evaluate_response(&cfg).is_ok());
    }

    #[test]
    fn strict_sweep_rejects_saturated_points_with_the_x_value() {
        let (cfg, spec, strict) = parse_sweep(
            r#"{"clusters":16,"lambda_per_us":1e-5,"parameter":"message_bytes",
                "values":[256,65536],"require_unsaturated":true}"#,
        )
        .unwrap();
        assert!(strict);
        // 64 KiB messages push Fast Ethernet past saturation even at
        // this low λ; the rejection names the offending sweep point.
        let err = check_sweep_unsaturated(&cfg, &spec).unwrap_err();
        assert_eq!(err.code, "workload_saturated");
        let x = err.data.iter().find(|(k, _)| *k == "sweep_x").map(|(_, v)| *v);
        assert_eq!(x, Some(65536.0));

        // A lambda sweep below saturation passes.
        let (cfg, spec, _) = parse_sweep(
            r#"{"clusters":16,"parameter":"lambda","values":[1e-6,2e-6],
                "require_unsaturated":true}"#,
        )
        .unwrap();
        assert!(check_sweep_unsaturated(&cfg, &spec).is_ok());
    }

    #[test]
    fn optimize_parses_defaults_and_rejects_bad_fields() {
        let request = parse_optimize(r#"{}"#).unwrap();
        assert_eq!(request.spec.workload.total_nodes, PAPER_TOTAL_NODES);
        assert_eq!(request.spec.workload.lambda_per_us, PAPER_LAMBDA_PER_US);
        assert_eq!(request.spec.constraints.slo_latency_us, None);
        assert_eq!(request.spec.constraints.budget_usd, None);
        assert!(!request.spec.constraints.require_unsaturated);
        assert!(!request.prune, "pruning is opt-in");
        assert_eq!(request.spec.space.len(), 1120);

        let request = parse_optimize(
            r#"{"slo_ms":30,"budget_usd":60000,"require_unsaturated":true,"prune":true,
                "workload":{"scenario":"case2","total_nodes":64,
                            "message_bytes":512,"lambda_per_us":1e-5}}"#,
        )
        .unwrap();
        assert_eq!(request.spec.constraints.slo_latency_us, Some(30_000.0));
        assert_eq!(request.spec.constraints.budget_usd, Some(60_000.0));
        assert!(request.spec.constraints.require_unsaturated);
        assert!(request.prune);
        assert_eq!(request.spec.workload.total_nodes, 64);
        assert_eq!(request.spec.workload.message_bytes, 512);

        let err = parse_optimize(r#"{"slo_ms":-1}"#).unwrap_err();
        assert_eq!(err.code, "invalid_field");
        let err = parse_optimize(r#"{"budget":1}"#).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        let err = parse_optimize(r#"{"workload":{"lambda_per_ms":1}}"#).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        let err = parse_optimize(r#"{"workload":3}"#).unwrap_err();
        assert_eq!(err.code, "invalid_field");
    }

    #[test]
    fn optimize_response_rejects_unusable_workloads_as_400() {
        // A prime node count has no divisors in [2, N/2]: the design
        // space is empty and the spec is rejected up front.
        let request = parse_optimize(r#"{"workload":{"total_nodes":7}}"#).unwrap();
        let err = optimize_response(&request).unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "invalid_config");
    }
}
