//! Request parsing and response building for the `/v1/*` endpoints.
//!
//! Requests and responses are plain JSON handled by the workspace's
//! shared [`hmcs_core::json`] module. Parsing is strict: unknown fields
//! are rejected (catching typos like `lambda_per_ms` before they
//! silently fall back to a default), enum fields must match an
//! allow-list, and numeric fields are range-checked by
//! [`SystemConfig`]'s own validation.
//!
//! **Error payloads never echo raw request bytes unescaped.** Every
//! error message — including ones that quote a client-supplied field
//! name — passes through [`json_str`] in [`error_body`], so a body full
//! of quotes and control characters still produces a valid JSON error
//! document.
//!
//! Float formatting uses [`json_num`], which prints the shortest
//! round-tripping decimal: a client that parses `mean_latency_us` back
//! with `str::parse::<f64>()` recovers the model's output **bit for
//! bit**, which is what lets the suite assert served results are
//! identical to in-process `reproduce` output.

use hmcs_core::batch::{self, BatchOptions};
use hmcs_core::config::SystemConfig;
use hmcs_core::json::{json_num, json_str, parse_json, JsonValue};
use hmcs_core::model::PerformanceReport;
use hmcs_core::scenario::{Scenario, PAPER_LAMBDA_PER_US, PAPER_TOTAL_NODES};
use hmcs_core::sweep::{self, SweepPoint};
use hmcs_topology::transmission::Architecture;

/// Hard cap on sweep points per request; larger sweeps must be split
/// (or run offline through `reproduce`), keeping one request from
/// monopolising a worker for minutes.
pub const MAX_SWEEP_POINTS: usize = 4096;

/// A structured API error: HTTP status plus a machine-readable code
/// and a human-readable message for the JSON error body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail. May embed client-supplied text; it is
    /// escaped at serialisation time by [`error_body`].
    pub message: String,
}

impl ApiError {
    fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        ApiError { status: 400, code, message: message.into() }
    }

    /// Renders this error as its JSON body.
    pub fn body(&self) -> String {
        error_body(self.code, &self.message)
    }
}

/// Builds the canonical error document. `message` is escaped here —
/// this is the single choke point that keeps client bytes from
/// reaching the wire unescaped.
pub fn error_body(code: &str, message: &str) -> String {
    format!(r#"{{"error":{{"code":{},"message":{}}}}}"#, json_str(code), json_str(message))
}

/// Which parameter `POST /v1/sweep` varies.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Sweep λ (messages/µs) at a fixed shape.
    Lambda(Vec<f64>),
    /// Sweep the cluster count at fixed total nodes.
    Clusters(Vec<usize>),
    /// Sweep the message size in bytes.
    MessageBytes(Vec<u64>),
}

/// The canonical coalescing key for an evaluate request. `Debug`
/// formatting prints floats as shortest round-tripping decimals, so
/// the key is injective on the config's bits — two requests share a
/// key exactly when they describe the same evaluation.
pub fn evaluate_key(config: &SystemConfig) -> String {
    format!("evaluate/{config:?}")
}

/// The canonical coalescing key for a sweep request.
pub fn sweep_key(config: &SystemConfig, spec: &SweepSpec) -> String {
    format!("sweep/{spec:?}/{config:?}")
}

/// Parses a `POST /v1/evaluate` body into a validated [`SystemConfig`].
pub fn parse_evaluate(body: &str) -> Result<SystemConfig, ApiError> {
    let value = parse_json(body).map_err(|e| ApiError::bad_request("invalid_json", e))?;
    let obj = as_request_object(&value)?;
    check_fields(obj, &ALLOWED_CONFIG_FIELDS)?;
    config_from(obj)
}

/// Parses a `POST /v1/sweep` body into a base config plus sweep spec.
pub fn parse_sweep(body: &str) -> Result<(SystemConfig, SweepSpec), ApiError> {
    let value = parse_json(body).map_err(|e| ApiError::bad_request("invalid_json", e))?;
    let obj = as_request_object(&value)?;
    let mut allowed: Vec<&str> = ALLOWED_CONFIG_FIELDS.to_vec();
    allowed.extend_from_slice(&["parameter", "values"]);
    check_fields(obj, &allowed)?;

    let parameter = get_str(obj, "parameter")?
        .ok_or_else(|| ApiError::bad_request("missing_field", "'parameter' is required"))?;
    let values = match obj.iter().find(|(k, _)| k == "values") {
        Some((_, JsonValue::Arr(items))) => items,
        Some(_) => return Err(ApiError::bad_request("invalid_field", "'values' must be an array")),
        None => return Err(ApiError::bad_request("missing_field", "'values' is required")),
    };
    if values.is_empty() {
        return Err(ApiError::bad_request("invalid_field", "'values' must be non-empty"));
    }
    if values.len() > MAX_SWEEP_POINTS {
        return Err(ApiError::bad_request(
            "sweep_too_large",
            format!("'values' has {} points; the cap is {MAX_SWEEP_POINTS}", values.len()),
        ));
    }

    let spec = match parameter.as_str() {
        "lambda" => SweepSpec::Lambda(numeric_values(values, "values")?),
        "clusters" => SweepSpec::Clusters(
            integer_values(values, "values")?.into_iter().map(|v| v as usize).collect(),
        ),
        "message_bytes" => SweepSpec::MessageBytes(integer_values(values, "values")?),
        other => {
            return Err(ApiError::bad_request(
                "invalid_field",
                format!(
                    "unknown sweep parameter '{other}'; expected lambda, clusters or message_bytes"
                ),
            ))
        }
    };
    let config = config_from(obj)?;
    Ok((config, spec))
}

/// Evaluates one config and renders the response document.
pub fn evaluate_response(config: &SystemConfig) -> Result<String, ApiError> {
    let (report, _stats) = batch::evaluate_one(config, None, None).map_err(|e| ApiError {
        status: 422,
        code: "evaluation_failed",
        message: e.to_string(),
    })?;
    Ok(render_evaluate(config, &report))
}

/// Runs the requested sweep **sequentially** (the worker pool provides
/// request-level parallelism; nesting the batch engine's own pool
/// inside each request would oversubscribe the host) and renders the
/// response document.
pub fn sweep_response(config: &SystemConfig, spec: &SweepSpec) -> Result<String, ApiError> {
    let failed = |e: hmcs_core::error::ModelError| ApiError {
        status: 422,
        code: "evaluation_failed",
        message: e.to_string(),
    };
    let (parameter, points): (&str, Vec<(f64, PerformanceReport)>) = match spec {
        SweepSpec::Lambda(values) => (
            "lambda",
            sweep::lambda_sweep(config, values)
                .map_err(failed)?
                .into_iter()
                .map(|SweepPoint { x, report, .. }| (x, report))
                .collect(),
        ),
        SweepSpec::Clusters(values) => (
            "clusters",
            sweep::cluster_sweep_with(
                config,
                config.total_nodes(),
                values,
                BatchOptions::sequential(),
            )
            .map_err(failed)?
            .into_iter()
            .map(|SweepPoint { x, report, .. }| (x as f64, report))
            .collect(),
        ),
        SweepSpec::MessageBytes(values) => (
            "message_bytes",
            sweep::message_size_sweep_with(config, values, BatchOptions::sequential())
                .map_err(failed)?
                .into_iter()
                .map(|SweepPoint { x, report, .. }| (x as f64, report))
                .collect(),
        ),
    };

    let mut out = String::with_capacity(256 + points.len() * 160);
    out.push_str("{\"schema\":\"hmcs-serve-sweep/1\",\"parameter\":");
    out.push_str(&json_str(parameter));
    out.push_str(",\"config\":");
    push_config(&mut out, config);
    out.push_str(",\"points\":[");
    for (i, (x, report)) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"x\":");
        out.push_str(&json_num(*x));
        out.push_str(",\"mean_latency_us\":");
        out.push_str(&json_num(report.latency.mean_message_latency_us));
        out.push_str(",\"throughput_per_us\":");
        out.push_str(&json_num(report.throughput_per_us));
        out.push_str(",\"bottleneck_utilization\":");
        out.push_str(&json_num(report.equilibrium.bottleneck_utilization()));
        out.push_str(",\"retained_fraction\":");
        out.push_str(&json_num(report.equilibrium.retained_fraction));
        out.push('}');
    }
    out.push_str("]}");
    Ok(out)
}

/// Renders the full evaluate response document.
pub fn render_evaluate(config: &SystemConfig, report: &PerformanceReport) -> String {
    let eq = &report.equilibrium;
    let lat = &report.latency;
    let mut out = String::with_capacity(640);
    out.push_str("{\"schema\":\"hmcs-serve-evaluate/1\",\"config\":");
    push_config(&mut out, config);
    out.push_str(",\"latency_us\":{\"mean\":");
    out.push_str(&json_num(lat.mean_message_latency_us));
    out.push_str(",\"internal\":");
    out.push_str(&json_num(lat.internal_latency_us));
    out.push_str(",\"external\":");
    out.push_str(&json_num(lat.external_latency_us));
    out.push_str(",\"sojourn_icn1\":");
    out.push_str(&json_num(lat.sojourn_icn1_us));
    out.push_str(",\"sojourn_ecn1\":");
    out.push_str(&json_num(lat.sojourn_ecn1_us));
    out.push_str(",\"sojourn_icn2\":");
    out.push_str(&json_num(lat.sojourn_icn2_us));
    out.push_str("},\"external_probability\":");
    out.push_str(&json_num(lat.external_probability));
    out.push_str(",\"utilization\":{\"icn1\":");
    out.push_str(&json_num(eq.icn1.utilization));
    out.push_str(",\"ecn1\":");
    out.push_str(&json_num(eq.ecn1.utilization));
    out.push_str(",\"icn2\":");
    out.push_str(&json_num(eq.icn2.utilization));
    out.push_str(",\"bottleneck\":");
    out.push_str(&json_num(eq.bottleneck_utilization()));
    out.push_str("},\"throughput_per_us\":");
    out.push_str(&json_num(report.throughput_per_us));
    out.push_str(",\"solver\":{\"iterations\":");
    out.push_str(&eq.solver_iterations.to_string());
    out.push_str(",\"lambda_eff\":");
    out.push_str(&json_num(eq.lambda_eff));
    out.push_str(",\"retained_fraction\":");
    out.push_str(&json_num(eq.retained_fraction));
    out.push_str(",\"total_waiting\":");
    out.push_str(&json_num(eq.total_waiting));
    out.push_str("}}");
    out
}

const ALLOWED_CONFIG_FIELDS: [&str; 6] =
    ["scenario", "architecture", "clusters", "nodes_per_cluster", "message_bytes", "lambda_per_us"];

fn as_request_object(value: &JsonValue) -> Result<&[(String, JsonValue)], ApiError> {
    match value {
        JsonValue::Obj(fields) => Ok(fields),
        _ => Err(ApiError::bad_request("invalid_json", "request body must be a JSON object")),
    }
}

/// Rejects fields outside `allowed`. The offending name is quoted in
/// the message — client bytes — and is escaped downstream by
/// [`error_body`].
fn check_fields(obj: &[(String, JsonValue)], allowed: &[&str]) -> Result<(), ApiError> {
    for (key, _) in obj {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad_request(
                "unknown_field",
                format!("unknown field '{key}'; expected one of {}", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn get_str(obj: &[(String, JsonValue)], key: &str) -> Result<Option<String>, ApiError> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Str(s))) => Ok(Some(s.clone())),
        Some(_) => Err(ApiError::bad_request("invalid_field", format!("'{key}' must be a string"))),
    }
}

fn get_u64(obj: &[(String, JsonValue)], key: &str) -> Result<Option<u64>, ApiError> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, v)) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(ApiError::bad_request(
                "invalid_field",
                format!("'{key}' must be a non-negative integer"),
            )),
        },
    }
}

fn get_f64(obj: &[(String, JsonValue)], key: &str) -> Result<Option<f64>, ApiError> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Num(x))) => Ok(Some(*x)),
        Some(_) => Err(ApiError::bad_request("invalid_field", format!("'{key}' must be a number"))),
    }
}

fn numeric_values(items: &[JsonValue], key: &str) -> Result<Vec<f64>, ApiError> {
    items
        .iter()
        .map(|v| match v {
            JsonValue::Num(x) => Ok(*x),
            _ => Err(ApiError::bad_request(
                "invalid_field",
                format!("'{key}' entries must be numbers"),
            )),
        })
        .collect()
}

fn integer_values(items: &[JsonValue], key: &str) -> Result<Vec<u64>, ApiError> {
    items
        .iter()
        .map(|v| {
            v.as_u64().ok_or_else(|| {
                ApiError::bad_request(
                    "invalid_field",
                    format!("'{key}' entries must be non-negative integers"),
                )
            })
        })
        .collect()
}

fn config_from(obj: &[(String, JsonValue)]) -> Result<SystemConfig, ApiError> {
    let scenario = match get_str(obj, "scenario")?.as_deref() {
        None | Some("case1") => Scenario::Case1,
        Some("case2") => Scenario::Case2,
        Some(other) => {
            return Err(ApiError::bad_request(
                "invalid_field",
                format!("unknown scenario '{other}'; expected case1 or case2"),
            ))
        }
    };
    let architecture = match get_str(obj, "architecture")?.as_deref() {
        None | Some("nonblocking") => Architecture::NonBlocking,
        Some("blocking") => Architecture::Blocking,
        Some(other) => {
            return Err(ApiError::bad_request(
                "invalid_field",
                format!("unknown architecture '{other}'; expected nonblocking or blocking"),
            ))
        }
    };
    let clusters = get_u64(obj, "clusters")?
        .ok_or_else(|| ApiError::bad_request("missing_field", "'clusters' is required"))?
        as usize;
    let nodes_per_cluster = match get_u64(obj, "nodes_per_cluster")? {
        Some(n) => n as usize,
        None => {
            if clusters == 0 || !PAPER_TOTAL_NODES.is_multiple_of(clusters) {
                return Err(ApiError::bad_request(
                    "invalid_field",
                    format!(
                        "'clusters' = {clusters} does not divide the default \
                         {PAPER_TOTAL_NODES} total nodes; pass nodes_per_cluster explicitly"
                    ),
                ));
            }
            PAPER_TOTAL_NODES / clusters
        }
    };
    let message_bytes = get_u64(obj, "message_bytes")?.unwrap_or(1024);
    let lambda_per_us = get_f64(obj, "lambda_per_us")?.unwrap_or(PAPER_LAMBDA_PER_US);

    SystemConfig::new(
        clusters,
        nodes_per_cluster,
        message_bytes,
        lambda_per_us,
        scenario,
        architecture,
    )
    .map_err(|e| ApiError::bad_request("invalid_config", e.to_string()))
}

fn push_config(out: &mut String, config: &SystemConfig) {
    out.push_str("{\"clusters\":");
    out.push_str(&config.clusters.to_string());
    out.push_str(",\"nodes_per_cluster\":");
    out.push_str(&config.nodes_per_cluster.to_string());
    out.push_str(",\"message_bytes\":");
    out.push_str(&config.message_bytes.to_string());
    out.push_str(",\"lambda_per_us\":");
    out.push_str(&json_num(config.lambda_per_us));
    out.push_str(",\"architecture\":");
    out.push_str(&json_str(match config.architecture {
        Architecture::NonBlocking => "nonblocking",
        Architecture::Blocking => "blocking",
    }));
    out.push_str(",\"icn1\":");
    out.push_str(&json_str(config.icn1.name));
    out.push_str(",\"ecn1\":");
    out.push_str(&json_str(config.ecn1.name));
    out.push_str(",\"icn2\":");
    out.push_str(&json_str(config.icn2.name));
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::model::AnalyticalModel;

    #[test]
    fn evaluate_accepts_minimal_and_full_requests() {
        let cfg = parse_evaluate(r#"{"clusters": 16}"#).unwrap();
        assert_eq!(cfg.clusters, 16);
        assert_eq!(cfg.nodes_per_cluster, 16);
        assert_eq!(cfg.message_bytes, 1024);
        assert_eq!(cfg.lambda_per_us, PAPER_LAMBDA_PER_US);
        assert_eq!(cfg.architecture, Architecture::NonBlocking);

        let cfg = parse_evaluate(
            r#"{"scenario":"case2","architecture":"blocking","clusters":8,
                "nodes_per_cluster":4,"message_bytes":512,"lambda_per_us":1e-4}"#,
        )
        .unwrap();
        assert_eq!(cfg.clusters, 8);
        assert_eq!(cfg.nodes_per_cluster, 4);
        assert_eq!(cfg.message_bytes, 512);
        assert_eq!(cfg.lambda_per_us, 1e-4);
        assert_eq!(cfg.architecture, Architecture::Blocking);
        assert_eq!(cfg.icn1.name, "Fast Ethernet");
    }

    #[test]
    fn evaluate_rejects_unknown_fields_and_bad_values() {
        let err = parse_evaluate(r#"{"clusters":4,"lambda_per_ms":0.25}"#).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        assert!(err.message.contains("lambda_per_ms"));

        let err = parse_evaluate(r#"{"clusters":0}"#).unwrap_err();
        assert_eq!(err.status, 400);

        let err = parse_evaluate(r#"{"clusters":3}"#).unwrap_err();
        assert!(err.message.contains("does not divide"), "{}", err.message);

        let err = parse_evaluate(r#"{"clusters":4,"scenario":"case9"}"#).unwrap_err();
        assert_eq!(err.code, "invalid_field");

        let err = parse_evaluate(r#"not json"#).unwrap_err();
        assert_eq!(err.code, "invalid_json");

        // Duplicate keys are a parse error (RFC 8259 strictness lives
        // in the shared parser).
        let err = parse_evaluate(r#"{"clusters":4,"clusters":8}"#).unwrap_err();
        assert_eq!(err.code, "invalid_json");
    }

    #[test]
    fn error_bodies_escape_client_bytes() {
        // A field name full of quotes, backslashes and control bytes
        // must still serialise to a valid JSON document.
        let body = "{\"evil\\\"}{\\u0001\": 1, \"clusters\": 4}";
        let err = parse_evaluate(body).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        let rendered = err.body();
        let reparsed = parse_json(&rendered).expect("error body must be valid JSON");
        let msg = reparsed.get("error").and_then(|e| e.get("message")).and_then(|m| m.as_str());
        let msg = msg.expect("error.message present");
        assert!(msg.contains("evil\"}{\u{1}"), "raw bytes preserved in the decoded message");
        assert!(rendered.contains("\\u0001"), "control byte escaped on the wire: {rendered}");
        assert!(!rendered.contains('\u{1}'), "no raw control bytes on the wire");
    }

    #[test]
    fn sweep_parses_all_three_parameters_and_caps_size() {
        let (cfg, spec) =
            parse_sweep(r#"{"clusters":16,"parameter":"lambda","values":[1e-4,2e-4]}"#).unwrap();
        assert_eq!(cfg.clusters, 16);
        assert_eq!(spec, SweepSpec::Lambda(vec![1e-4, 2e-4]));

        let (_, spec) =
            parse_sweep(r#"{"clusters":16,"parameter":"clusters","values":[4,16,64]}"#).unwrap();
        assert_eq!(spec, SweepSpec::Clusters(vec![4, 16, 64]));

        let (_, spec) =
            parse_sweep(r#"{"clusters":16,"parameter":"message_bytes","values":[256,1024]}"#)
                .unwrap();
        assert_eq!(spec, SweepSpec::MessageBytes(vec![256, 1024]));

        let err = parse_sweep(r#"{"clusters":16,"parameter":"lambda","values":[]}"#).unwrap_err();
        assert_eq!(err.code, "invalid_field");

        let big: Vec<String> = (0..=MAX_SWEEP_POINTS).map(|i| format!("{}e-6", i + 1)).collect();
        let body =
            format!(r#"{{"clusters":16,"parameter":"lambda","values":[{}]}}"#, big.join(","));
        let err = parse_sweep(&body).unwrap_err();
        assert_eq!(err.code, "sweep_too_large");
    }

    #[test]
    fn evaluate_response_is_bit_identical_to_in_process_evaluation() {
        let cfg = parse_evaluate(r#"{"clusters":16,"architecture":"blocking"}"#).unwrap();
        let body = evaluate_response(&cfg).unwrap();
        let doc = parse_json(&body).unwrap();
        let served = doc
            .get("latency_us")
            .and_then(|l| l.get("mean"))
            .and_then(|m| m.as_num())
            .expect("latency_us.mean present");
        let direct = AnalyticalModel::evaluate(&cfg).unwrap();
        assert_eq!(
            served.to_bits(),
            direct.latency.mean_message_latency_us.to_bits(),
            "served latency must round-trip bit-identically"
        );
    }

    #[test]
    fn sweep_response_matches_individual_evaluations() {
        let (cfg, spec) =
            parse_sweep(r#"{"clusters":16,"parameter":"clusters","values":[4,64]}"#).unwrap();
        let body = sweep_response(&cfg, &spec).unwrap();
        let doc = parse_json(&body).unwrap();
        let points = doc.get("points").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(points.len(), 2);
        for (point, clusters) in points.iter().zip([4usize, 64]) {
            let x = point.get("x").and_then(|x| x.as_num()).unwrap();
            assert_eq!(x as usize, clusters);
            let served = point.get("mean_latency_us").and_then(|m| m.as_num()).unwrap();
            let direct_cfg = parse_evaluate(&format!(r#"{{"clusters":{clusters}}}"#)).unwrap();
            let direct = AnalyticalModel::evaluate(&direct_cfg).unwrap();
            assert_eq!(served.to_bits(), direct.latency.mean_message_latency_us.to_bits());
        }
    }

    #[test]
    fn coalescing_keys_distinguish_configs_and_endpoints() {
        let a = parse_evaluate(r#"{"clusters":16}"#).unwrap();
        let b = parse_evaluate(r#"{"clusters":32}"#).unwrap();
        let a2 = parse_evaluate(r#"{"clusters":16,"message_bytes":1024}"#).unwrap();
        assert_ne!(evaluate_key(&a), evaluate_key(&b));
        assert_eq!(evaluate_key(&a), evaluate_key(&a2), "defaults normalise to the same key");
        let spec = SweepSpec::Lambda(vec![1e-4]);
        assert_ne!(evaluate_key(&a), sweep_key(&a, &spec));
    }
}
