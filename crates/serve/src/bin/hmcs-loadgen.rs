//! The `hmcs-loadgen` benchmark client binary.
//!
//! Thin shell around [`hmcs_serve::loadgen`]: parse flags, run one
//! open- or closed-loop benchmark against a running `hmcs-serve`
//! daemon, and emit the `hmcs-loadgen/1` JSON summary to stdout (or
//! `--out FILE`). Exits non-zero when the run itself failed (e.g. the
//! server is unreachable); result *quality* gating is `benchgate
//! serve`'s job.

use hmcs_serve::loadgen::{self, LoadgenConfig, Mode};
use std::time::Duration;

const USAGE: &str = "usage: hmcs-loadgen [options]

options:
  --addr HOST:PORT       target server (default 127.0.0.1:8377)
  --mode closed|open     closed loop (fixed concurrency) or open loop
                         (fixed schedule) (default closed)
  --connections N        concurrent connections (default 2)
  --pipeline N           closed loop: requests in flight per connection
                         (default 16)
  --rate N               open loop: aggregate target requests/second
                         (required for --mode open)
  --duration-s N         measurement window seconds (default 5)
  --warmup-s N           warm-up seconds, discarded (default 1)
  --sweep-permille N     sweep requests per 1000 (default 0; the rest
                         are evaluates)
  --clusters N           clusters field of generated configs (default 16)
  --message-bytes A,B,C  message-size distribution, sampled uniformly
                         (default 256,1024,4096)
  --out FILE             write the JSON summary to FILE instead of stdout
  --help                 print this help
";

struct Cli {
    config: LoadgenConfig,
    out: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut config = LoadgenConfig::default();
    let mut out = None;
    let mut pipeline = 16usize;
    let mut rate: Option<f64> = None;
    let mut open = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = || format!("invalid value {value:?} for {flag}");
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--mode" => match value.as_str() {
                "closed" => open = false,
                "open" => open = true,
                other => return Err(format!("unknown mode {other:?}; expected closed or open")),
            },
            "--connections" => config.connections = value.parse().map_err(|_| bad())?,
            "--pipeline" => pipeline = value.parse().map_err(|_| bad())?,
            "--rate" => rate = Some(value.parse().map_err(|_| bad())?),
            "--duration-s" => {
                config.duration = Duration::from_secs_f64(value.parse().map_err(|_| bad())?);
            }
            "--warmup-s" => {
                config.warmup = Duration::from_secs_f64(value.parse().map_err(|_| bad())?);
            }
            "--sweep-permille" => {
                config.mix.sweep_permille = value.parse().map_err(|_| bad())?;
                if config.mix.sweep_permille > 1000 {
                    return Err("--sweep-permille must be 0..=1000".into());
                }
            }
            "--clusters" => config.mix.clusters = value.parse().map_err(|_| bad())?,
            "--message-bytes" => {
                config.mix.message_bytes = value
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("invalid size {s:?}")))
                    .collect::<Result<Vec<u64>, _>>()?;
                if config.mix.message_bytes.is_empty() {
                    return Err("--message-bytes needs at least one size".into());
                }
            }
            "--out" => out = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    config.mode = if open {
        let rate = rate.ok_or("--mode open requires --rate")?;
        if rate <= 0.0 || !rate.is_finite() {
            return Err("--rate must be positive".into());
        }
        Mode::Open { rate_per_s: rate }
    } else {
        Mode::Closed { pipeline: pipeline.max(1) }
    };
    if config.connections == 0 {
        return Err("--connections must be at least 1".into());
    }
    Ok(Cli { config, out })
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "hmcs-loadgen: {} for {:?} + {:?} warm-up against http://{} ({} connection(s))",
        match cli.config.mode {
            Mode::Closed { pipeline } => format!("closed loop, pipeline {pipeline}"),
            Mode::Open { rate_per_s } => format!("open loop at {rate_per_s} req/s"),
        },
        cli.config.duration,
        cli.config.warmup,
        cli.config.addr,
        cli.config.connections,
    );

    let summary = match loadgen::run(&cli.config) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("error: benchmark run failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "hmcs-loadgen: {} measured req ({:.0} req/s), p50 {} µs, p99 {} µs, {} error(s), {} dropped",
        summary.measured_requests,
        summary.achieved_rps,
        summary.latency.p50,
        summary.latency.p99,
        summary.errors,
        summary.dropped,
    );

    let doc = summary.to_json();
    match &cli.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("hmcs-loadgen: summary written to {path}");
        }
        None => println!("{doc}"),
    }
}
