//! The `hmcs-serve` daemon binary.
//!
//! Thin shell around [`hmcs_serve::server::Server`]: parse flags,
//! install signal handlers, start serving, and drain gracefully on
//! SIGINT/SIGTERM — the process exits 0 after a clean drain, which CI
//! asserts.

use hmcs_serve::server::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

// `std` links libc already; declaring `signal` directly avoids a
// dependency for the one call the daemon needs. The handler only
// touches an atomic, which is async-signal-safe.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

const USAGE: &str = "usage: hmcs-serve [options]

options:
  --addr HOST:PORT        bind address (default 127.0.0.1:8377)
  --workers N             worker threads (default: HMCS_POOL_WORKERS or
                          available parallelism)
  --queue-capacity N      admission queue bound (default 64)
  --deadline-ms N         per-request deadline in ms (default 10000)
  --retry-after-s N       Retry-After value on shed responses (default 1)
  --max-body-bytes N      request body cap (default 1048576)
  --idle-timeout-ms N     close kept-alive connections idle this long
                          (default 5000)
  --max-conn-requests N   requests served per connection before the
                          server closes it (default 100000)
  --batch-window-us N     micro-batching gather window for distinct
                          evaluate points; 0 disables (default 0)
  --handler-latency-ms N  artificial /v1/* latency, fault injection
                          for soak tests (default 0)
  --help                  print this help
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |_| format!("invalid value {value:?} for {flag}");
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => config.workers = value.parse().map_err(bad)?,
            "--queue-capacity" => config.queue_capacity = value.parse().map_err(bad)?,
            "--deadline-ms" => {
                config.deadline = Duration::from_millis(value.parse().map_err(bad)?);
            }
            "--retry-after-s" => config.retry_after_s = value.parse().map_err(bad)?,
            "--max-body-bytes" => config.max_body_bytes = value.parse().map_err(bad)?,
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(value.parse().map_err(bad)?);
            }
            "--max-conn-requests" => config.max_conn_requests = value.parse().map_err(bad)?,
            "--batch-window-us" => {
                config.batch_window = Duration::from_micros(value.parse().map_err(bad)?);
            }
            "--handler-latency-ms" => {
                config.handler_latency = Duration::from_millis(value.parse().map_err(bad)?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            std::process::exit(1);
        }
    };
    println!("hmcs-serve listening on http://{}", server.local_addr());

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("hmcs-serve: draining {} queued request(s)", server.queue_len());
    server.shutdown();
    eprintln!("hmcs-serve: drained, exiting");
}
