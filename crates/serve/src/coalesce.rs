//! In-flight request deduplication.
//!
//! Concurrent identical requests are common in serving workloads
//! (dashboards refreshing the same sweep, retry storms); computing each
//! copy wastes the worker pool. The [`Coalescer`] maps a canonical
//! request key to an in-flight computation slot: the first arrival (the
//! *leader*) computes, every later arrival (a *follower*) blocks on the
//! slot and receives a clone of the leader's result — byte-identical,
//! since responses are deterministic functions of the canonical key.
//!
//! The keying scheme generalises `hmcs-bench`'s sim cache: a config's
//! `Debug` rendering is injective (floats print as shortest
//! round-tripping strings), so two requests share a key exactly when
//! their parsed configurations are bit-identical.
//!
//! Unlike the sim cache this is **not** a result cache: a slot lives
//! only while its computation is in flight, so memory is bounded by
//! the worker pool and results can never go stale.
//!
//! Followers wait with a deadline. If the leader disappears (panic) or
//! overruns the follower's budget, the follower reports failure and
//! the server answers `503` — a stuck computation degrades to load
//! shedding instead of hanging the pool.

use crate::keys;
use hmcs_core::metrics;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct SlotState<V> {
    value: Option<V>,
    abandoned: bool,
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

/// How one [`Coalescer::run`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// This call was the leader and performed the computation.
    Computed,
    /// This call received a clone of a concurrent leader's result.
    Coalesced,
    /// The leader did not deliver within the wait budget.
    TimedOut,
}

/// Deduplicates concurrent computations by canonical key.
pub struct Coalescer<V: Clone> {
    inflight: Mutex<HashMap<String, Arc<Slot<V>>>>,
    hits: &'static metrics::Counter,
    computations: &'static metrics::Counter,
}

impl<V: Clone> Default for Coalescer<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Removes the leader's slot on unwind so a panicking computation
/// cannot strand future identical requests on a slot that will never
/// complete; waiting followers observe `abandoned` and fail fast.
struct LeaderGuard<'a, V: Clone> {
    owner: &'a Coalescer<V>,
    key: &'a str,
    slot: &'a Arc<Slot<V>>,
    completed: bool,
}

impl<V: Clone> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        self.owner.inflight.lock().expect("coalescer poisoned").remove(self.key);
        if !self.completed {
            self.slot.state.lock().expect("slot poisoned").abandoned = true;
        }
        self.slot.ready.notify_all();
    }
}

impl<V: Clone> Coalescer<V> {
    /// Creates an empty coalescer counting into the serve-standard
    /// [`crate::keys::COALESCE_HITS`] /
    /// [`crate::keys::COALESCE_COMPUTATIONS`] metrics.
    pub fn new() -> Self {
        Self::with_counters(
            metrics::counter(keys::COALESCE_HITS),
            metrics::counter(keys::COALESCE_COMPUTATIONS),
        )
    }

    /// Creates a coalescer counting into caller-supplied metrics —
    /// lets tests observe exactly their own coalescer without racing
    /// other users of the process-global registry.
    pub fn with_counters(
        hits: &'static metrics::Counter,
        computations: &'static metrics::Counter,
    ) -> Self {
        Coalescer { inflight: Mutex::new(HashMap::new()), hits, computations }
    }

    /// Runs `compute` under `key`, joining an identical in-flight
    /// computation when one exists. Followers wait at most
    /// `wait_budget`.
    pub fn run(
        &self,
        key: &str,
        wait_budget: Duration,
        compute: impl FnOnce() -> V,
    ) -> (Option<V>, Outcome) {
        let slot = {
            let mut inflight = self.inflight.lock().expect("coalescer poisoned");
            if let Some(existing) = inflight.get(key) {
                let existing = Arc::clone(existing);
                drop(inflight);
                self.hits.incr();
                return match self.follow(&existing, wait_budget) {
                    Some(v) => (Some(v), Outcome::Coalesced),
                    None => (None, Outcome::TimedOut),
                };
            }
            let slot = Arc::new(Slot {
                state: Mutex::new(SlotState { value: None, abandoned: false }),
                ready: Condvar::new(),
            });
            inflight.insert(key.to_string(), Arc::clone(&slot));
            slot
        };

        let mut guard = LeaderGuard { owner: self, key, slot: &slot, completed: false };
        let value = compute();
        // Counted only on successful completion: a panicking leader
        // never finished a computation, and counting it up front would
        // drift the e2e invariant `computations + hits == requests`
        // under faults.
        self.computations.incr();
        slot.state.lock().expect("slot poisoned").value = Some(value.clone());
        guard.completed = true;
        drop(guard); // removes the inflight entry, then wakes followers
        (Some(value), Outcome::Computed)
    }

    fn follow(&self, slot: &Slot<V>, wait_budget: Duration) -> Option<V> {
        let deadline = Instant::now() + wait_budget;
        let mut state = slot.state.lock().expect("slot poisoned");
        loop {
            if let Some(v) = &state.value {
                return Some(v.clone());
            }
            if state.abandoned {
                return None;
            }
            // A lapsed deadline falls out here as `None` after one
            // last value check above.
            let remaining = deadline.checked_duration_since(Instant::now())?;
            state = slot.ready.wait_timeout(state, remaining).expect("slot poisoned").0;
        }
    }

    /// Number of in-flight computations (tests/metrics only).
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("coalescer poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn solo_requests_compute_and_clean_up() {
        let c: Coalescer<u64> = Coalescer::new();
        let (v, outcome) = c.run("k", Duration::from_secs(1), || 42);
        assert_eq!(v, Some(42));
        assert_eq!(outcome, Outcome::Computed);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn concurrent_identical_requests_share_one_computation() {
        let c: Arc<Coalescer<u64>> = Arc::new(Coalescer::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, computations, barrier) =
                    (Arc::clone(&c), Arc::clone(&computations), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    c.run("same", Duration::from_secs(10), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Hold the slot open long enough that siblings
                        // arrive while the computation is in flight.
                        std::thread::sleep(Duration::from_millis(50));
                        7u64
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let computed = results.iter().filter(|(_, o)| *o == Outcome::Computed).count();
        let coalesced = results.iter().filter(|(_, o)| *o == Outcome::Coalesced).count();
        assert!(results.iter().all(|(v, _)| *v == Some(7)));
        assert_eq!(computed, computations.load(Ordering::SeqCst));
        assert!(computed < 8, "at least one request must coalesce");
        assert_eq!(computed + coalesced, 8);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c: Coalescer<u64> = Coalescer::new();
        let (a, oa) = c.run("a", Duration::from_secs(1), || 1);
        let (b, ob) = c.run("b", Duration::from_secs(1), || 2);
        assert_eq!((a, oa), (Some(1), Outcome::Computed));
        assert_eq!((b, ob), (Some(2), Outcome::Computed));
    }

    #[test]
    fn followers_time_out_rather_than_hang() {
        let c: Arc<Coalescer<u64>> = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let (c, barrier) = (Arc::clone(&c), Arc::clone(&barrier));
            std::thread::spawn(move || {
                c.run("slow", Duration::from_secs(10), || {
                    barrier.wait(); // follower is about to join
                    std::thread::sleep(Duration::from_millis(300));
                    1u64
                })
            })
        };
        barrier.wait();
        // Give the leader's entry a moment to be observable, then join
        // with a budget far shorter than the leader's compute time.
        std::thread::sleep(Duration::from_millis(20));
        let (v, outcome) = c.run("slow", Duration::from_millis(30), || 2u64);
        assert_eq!(outcome, Outcome::TimedOut);
        assert_eq!(v, None);
        let (lv, lo) = leader.join().unwrap();
        assert_eq!((lv, lo), (Some(1), Outcome::Computed));
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn panicking_leader_is_not_counted_as_a_computation() {
        // Regression: the computation counter used to be incremented
        // *before* running `compute`, so a panicking leader inflated
        // it and `computations + hits == requests` drifted under
        // faults. Only completed computations may count. Private
        // counter keys keep the assertion race-free against other
        // tests sharing the global registry.
        let computations = metrics::counter("test.coalesce.panic.computations");
        let before = computations.get();
        let c: Arc<Coalescer<u64>> = Arc::new(Coalescer::with_counters(
            metrics::counter("test.coalesce.panic.hits"),
            computations,
        ));
        let doomed = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                c.run("panics", Duration::from_secs(1), || -> u64 { panic!("fault injection") })
            })
        };
        assert!(doomed.join().is_err(), "leader panicked by design");
        assert_eq!(
            computations.get(),
            before,
            "a panicking leader must not count as a completed computation"
        );
        // A successful run afterwards counts exactly once.
        let (v, _) = c.run("panics", Duration::from_secs(1), || 5u64);
        assert_eq!(v, Some(5));
        assert_eq!(computations.get(), before + 1);
    }

    #[test]
    fn panicking_leader_abandons_the_slot() {
        let c: Arc<Coalescer<u64>> = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let (c, barrier) = (Arc::clone(&c), Arc::clone(&barrier));
            std::thread::spawn(move || {
                c.run("doomed", Duration::from_secs(1), || {
                    barrier.wait();
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("computation failed");
                })
            })
        };
        barrier.wait();
        std::thread::sleep(Duration::from_millis(10));
        let (v, outcome) = c.run("doomed", Duration::from_secs(5), || 3u64);
        // Either we joined the doomed slot and saw it abandoned, or we
        // arrived after cleanup and computed fresh.
        assert!(
            (v.is_none() && outcome == Outcome::TimedOut)
                || (v == Some(3) && outcome == Outcome::Computed),
            "unexpected outcome: {v:?} {outcome:?}"
        );
        assert!(leader.join().is_err(), "leader panicked by design");
        // The slot must not leak: new identical requests compute fresh.
        let (v2, o2) = c.run("doomed", Duration::from_secs(1), || 4u64);
        assert_eq!((v2, o2), (Some(4), Outcome::Computed));
        assert_eq!(c.inflight_len(), 0);
    }
}
