//! A minimal hand-rolled HTTP/1.1 subset.
//!
//! Just enough protocol for the daemon: one request per connection
//! (`Connection: close` on every response), `Content-Length` bodies
//! only, bounded header and body sizes, and no dependency beyond
//! `std::io`. The parser is strict where it matters for robustness —
//! malformed request lines, oversized headers/bodies, and
//! `Transfer-Encoding` (which this server deliberately does not
//! implement) are all rejected with precise status codes rather than
//! being misread.

use std::io::{Read, Write};

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// The path with any query string stripped.
    pub path: String,
    /// The raw body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each variant maps to one status.
#[derive(Debug)]
pub enum ReadError {
    /// Protocol violation → `400`.
    Malformed(String),
    /// Head or body over the configured cap → `431` / `413`.
    TooLarge(&'static str),
    /// Unsupported mechanism (`Transfer-Encoding`) → `501`.
    Unsupported(&'static str),
    /// Socket error or timeout → no response possible / `408`.
    Io(std::io::Error),
}

impl ReadError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ReadError::Malformed(_) => 400,
            ReadError::TooLarge("head") => 431,
            ReadError::TooLarge(_) => 413,
            ReadError::Unsupported(_) => 501,
            ReadError::Io(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                408
            }
            ReadError::Io(_) => 400,
        }
    }

    /// A short human-readable reason (never echoes raw request bytes).
    pub fn reason(&self) -> String {
        match self {
            ReadError::Malformed(what) => format!("malformed request: {what}"),
            ReadError::TooLarge(what) => format!("request {what} too large"),
            ReadError::Unsupported(what) => format!("{what} not supported"),
            ReadError::Io(e) => format!("read failed: {}", e.kind()),
        }
    }
}

/// Reads one request from `stream`, enforcing [`MAX_HEAD_BYTES`] and
/// `max_body_bytes`.
pub fn read_request(stream: &mut impl Read, max_body_bytes: usize) -> Result<Request, ReadError> {
    // Read until the blank line terminating the head, byte-bounded.
    let mut head = Vec::with_capacity(512);
    let mut body_start = Vec::new();
    let mut buf = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("head"));
        }
        let n = stream.read(&mut buf).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed before request head".into()));
        }
        head.extend_from_slice(&buf[..n]);
    };
    body_start.extend_from_slice(&head[head_end..]);
    head.truncate(head_end);

    let head_text = std::str::from_utf8(&head)
        .map_err(|_| ReadError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ReadError::Malformed("bad request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed("unsupported HTTP version".into()));
    }

    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed("header without ':'".into()));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Malformed("unparseable Content-Length".into()))?;
            }
            "transfer-encoding" => return Err(ReadError::Unsupported("Transfer-Encoding")),
            _ => {}
        }
    }
    if content_length > max_body_bytes {
        return Err(ReadError::TooLarge("body"));
    }

    let mut body = body_start;
    if body.len() > content_length {
        return Err(ReadError::Malformed("body longer than Content-Length".into()));
    }
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&buf[..n]);
        if body.len() > content_length {
            return Err(ReadError::Malformed("body longer than Content-Length".into()));
        }
    }

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request { method: method.to_string(), path, body })
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// One response, serialised by [`write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Emits a `Retry-After: <seconds>` header when set (load shed).
    pub retry_after_s: Option<u64>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A `200` JSON response.
    pub fn json(body: String) -> Self {
        Response { status: 200, content_type: "application/json", retry_after_s: None, body }
    }

    /// A `200` plain-text response.
    pub fn text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            retry_after_s: None,
            body,
        }
    }

    /// The standard reason phrase for this status.
    pub fn reason_phrase(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Serialises `response` onto `stream` (one-shot; the connection is
/// closed afterwards, matching the advertised `Connection: close`).
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        response.reason_phrase(),
        response.content_type,
        response.body.len()
    );
    if let Some(seconds) = response.retry_after_s {
        head.push_str(&format!("retry-after: {seconds}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()), 1024)
    }

    #[test]
    fn parses_a_simple_post() {
        let req = parse(b"POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/evaluate");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_get_without_body_and_strips_query() {
        let req = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert_eq!(parse(b"NONSENSE\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET /x HTTP/9.9\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET  HTTP/1.1\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"").unwrap_err().status(), 400);
    }

    #[test]
    fn rejects_oversized_bodies_and_heads() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
        let mut big = b"GET /x HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 16));
        assert_eq!(parse(&big).unwrap_err().status(), 431);
    }

    #[test]
    fn rejects_transfer_encoding() {
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn rejects_truncated_bodies() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn response_serialisation_includes_retry_after() {
        let mut out = Vec::new();
        let resp = Response {
            status: 503,
            content_type: "application/json",
            retry_after_s: Some(2),
            body: "{}".into(),
        };
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
