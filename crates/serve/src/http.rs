//! A minimal hand-rolled HTTP/1.1 subset with keep-alive.
//!
//! Just enough protocol for the daemon: `Content-Length` bodies only,
//! bounded header and body sizes, persistent connections via
//! [`RequestReader`] (a per-connection buffered reader that carries
//! pipelined bytes over from one request to the next), and no
//! dependency beyond `std::io`. The parser is strict where it matters
//! for robustness — malformed request lines, oversized headers/bodies,
//! duplicate or non-numeric `Content-Length` values (the classic
//! request-smuggling levers once connections are reused) and
//! `Transfer-Encoding` (which this server deliberately does not
//! implement) are all rejected with precise status codes rather than
//! being misread.

use std::io::{Read, Write};
use std::time::Instant;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Socket read granularity. One read of a pipelined connection can
/// pull many small requests into the buffer at once.
const READ_CHUNK: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// The path with any query string stripped.
    pub path: String,
    /// The raw body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether this request ends the connection: `Connection: close`,
    /// or HTTP/1.0 without an explicit `Connection: keep-alive`.
    pub wants_close: bool,
}

/// Why a request could not be read. Each variant maps to one status.
#[derive(Debug)]
pub enum ReadError {
    /// Protocol violation → `400`.
    Malformed(String),
    /// Head or body over the configured cap → `431` / `413`.
    TooLarge(&'static str),
    /// Unsupported mechanism (`Transfer-Encoding`) → `501`.
    Unsupported(&'static str),
    /// Socket error or timeout → no response possible / `408`.
    Io(std::io::Error),
}

impl ReadError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ReadError::Malformed(_) => 400,
            ReadError::TooLarge("head") => 431,
            ReadError::TooLarge(_) => 413,
            ReadError::Unsupported(_) => 501,
            ReadError::Io(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                408
            }
            ReadError::Io(_) => 400,
        }
    }

    /// A short human-readable reason (never echoes raw request bytes).
    pub fn reason(&self) -> String {
        match self {
            ReadError::Malformed(what) => format!("malformed request: {what}"),
            ReadError::TooLarge(what) => format!("request {what} too large"),
            ReadError::Unsupported(what) => format!("{what} not supported"),
            ReadError::Io(e) => format!("read failed: {}", e.kind()),
        }
    }
}

/// A buffered per-connection request reader.
///
/// Under keep-alive, one socket read routinely pulls bytes belonging
/// to *several* pipelined requests. The reader owns the carry-over
/// buffer: [`RequestReader::read_request`] consumes exactly one
/// request (head + `Content-Length` body) and leaves everything after
/// it buffered for the next call — those bytes are the next request,
/// not a protocol error.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
}

impl RequestReader {
    /// Creates a reader with an empty carry-over buffer.
    pub fn new() -> Self {
        RequestReader { buf: Vec::with_capacity(1024) }
    }

    /// Whether bytes of a further (pipelined) request are already
    /// buffered — if so, the next [`RequestReader::read_request`] can
    /// make progress without touching the socket.
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads one request, enforcing [`MAX_HEAD_BYTES`] and
    /// `max_body_bytes`. Returns `Ok(None)` on a clean end of
    /// connection (EOF before the first byte of a request). Socket
    /// timeouts (`WouldBlock`/`TimedOut`) are retried until `deadline`,
    /// so the stream's own read timeout may be a short slice.
    pub fn read_request(
        &mut self,
        stream: &mut impl Read,
        max_body_bytes: usize,
        deadline: Instant,
    ) -> Result<Option<Request>, ReadError> {
        let mut chunk = [0u8; READ_CHUNK];
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                if pos > MAX_HEAD_BYTES {
                    return Err(ReadError::TooLarge("head"));
                }
                break pos;
            }
            if self.buf.len() >= MAX_HEAD_BYTES {
                return Err(ReadError::TooLarge("head"));
            }
            if self.fill(stream, &mut chunk, deadline)? == 0 {
                if self.buf.is_empty() {
                    return Ok(None); // clean close between requests
                }
                return Err(ReadError::Malformed("connection closed before request head".into()));
            }
        };

        // `head_end` includes the final CRLFCRLF; parse without it.
        let head_text = std::str::from_utf8(&self.buf[..head_end - 4])
            .map_err(|_| ReadError::Malformed("request head is not UTF-8".into()))?;
        let mut lines = head_text.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => return Err(ReadError::Malformed("bad request line".into())),
            };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(ReadError::Malformed("unsupported HTTP version".into()));
        }

        let mut content_length: Option<usize> = None;
        let mut close_token = false;
        let mut keep_alive_token = false;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(ReadError::Malformed("header without ':'".into()));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    // RFC 7230 §3.3.2: duplicate or conflicting
                    // Content-Length headers make the message boundary
                    // ambiguous — under keep-alive that ambiguity is
                    // how request smuggling starts, so *any* repeat is
                    // rejected outright.
                    if content_length.is_some() {
                        return Err(ReadError::Malformed("duplicate Content-Length".into()));
                    }
                    // ASCII digits only: `usize::from_str` would also
                    // accept a leading `+`, which no peer sends and
                    // some proxies parse differently.
                    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                        return Err(ReadError::Malformed("unparseable Content-Length".into()));
                    }
                    content_length =
                        Some(value.parse().map_err(|_| {
                            ReadError::Malformed("unparseable Content-Length".into())
                        })?);
                }
                "transfer-encoding" => return Err(ReadError::Unsupported("Transfer-Encoding")),
                "connection" => {
                    for token in value.split(',') {
                        match token.trim().to_ascii_lowercase().as_str() {
                            "close" => close_token = true,
                            "keep-alive" => keep_alive_token = true,
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > max_body_bytes {
            return Err(ReadError::TooLarge("body"));
        }
        let wants_close = close_token || (version == "HTTP/1.0" && !keep_alive_token);
        let path = target.split('?').next().unwrap_or(target).to_string();
        let request_line = (method.to_string(), path);

        // Consume the head; everything left in `buf` is body bytes and
        // possibly the start of pipelined follow-up requests.
        self.buf.drain(..head_end);
        while self.buf.len() < content_length {
            if self.fill(stream, &mut chunk, deadline)? == 0 {
                return Err(ReadError::Malformed("connection closed mid-body".into()));
            }
        }
        let body = self.buf[..content_length].to_vec();
        self.buf.drain(..content_length);

        Ok(Some(Request { method: request_line.0, path: request_line.1, body, wants_close }))
    }

    /// One socket read into the buffer, retrying timeout-flavoured
    /// errors until `deadline`. Returns the byte count (0 = EOF).
    fn fill(
        &mut self,
        stream: &mut impl Read,
        chunk: &mut [u8],
        deadline: Instant,
    ) -> Result<usize, ReadError> {
        loop {
            match stream.read(chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) && Instant::now() < deadline =>
                {
                    continue
                }
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// One response, serialised by [`write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Emits a `Retry-After: <seconds>` header when set (load shed).
    pub retry_after_s: Option<u64>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A `200` JSON response.
    pub fn json(body: String) -> Self {
        Response { status: 200, content_type: "application/json", retry_after_s: None, body }
    }

    /// A `200` plain-text response.
    pub fn text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            retry_after_s: None,
            body,
        }
    }

    /// The standard reason phrase for this status.
    pub fn reason_phrase(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Appends the serialised response to `out`. `close` selects the
/// advertised `connection:` disposition; the caller must actually
/// close the socket when it says `close`. Appending lets the server
/// cork several pipelined responses into one socket write.
pub fn serialize_response(out: &mut Vec<u8>, response: &Response, close: bool) {
    use std::io::Write as _;
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        response.reason_phrase(),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    if let Some(seconds) = response.retry_after_s {
        let _ = write!(out, "retry-after: {seconds}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(response.body.as_bytes());
}

/// Serialises `response` onto `stream` in a single write.
pub fn write_response(
    stream: &mut impl Write,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(256 + response.body.len());
    serialize_response(&mut out, response, close);
    stream.write_all(&out)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(30)
    }

    fn parse(raw: &[u8]) -> Result<Request, ReadError> {
        let mut reader = RequestReader::new();
        match reader.read_request(&mut std::io::Cursor::new(raw.to_vec()), 1024, far()) {
            Ok(Some(req)) => Ok(req),
            Ok(None) => Err(ReadError::Malformed("clean close".into())),
            Err(e) => Err(e),
        }
    }

    #[test]
    fn parses_a_simple_post() {
        let req = parse(b"POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/evaluate");
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_get_without_body_and_strips_query() {
        let req = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_semantics_follow_the_version() {
        assert!(parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().wants_close);
        assert!(parse(b"GET /x HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap().wants_close);
        assert!(
            parse(b"GET /x HTTP/1.1\r\nConnection: foo, close\r\n\r\n").unwrap().wants_close,
            "close anywhere in the token list wins"
        );
        assert!(parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap().wants_close, "HTTP/1.0 defaults close");
        assert!(
            !parse(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().wants_close,
            "explicit keep-alive overrides the 1.0 default"
        );
    }

    #[test]
    fn pipelined_requests_carry_over_instead_of_erroring() {
        // Regression: bytes after the body used to be rejected as
        // "body longer than Content-Length"; under keep-alive they are
        // the *next* request and must be preserved for it.
        let raw = b"POST /v1/evaluate HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = RequestReader::new();
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let first = reader.read_request(&mut cursor, 1024, far()).unwrap().unwrap();
        assert_eq!(first.path, "/v1/evaluate");
        assert_eq!(first.body, b"abcd");
        assert!(reader.has_buffered(), "second request is already buffered");
        let second = reader.read_request(&mut cursor, 1024, far()).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(second.body.is_empty());
        // After the last request a clean EOF reads as end of stream.
        assert!(reader.read_request(&mut cursor, 1024, far()).unwrap().is_none());
    }

    #[test]
    fn clean_eof_before_any_request_is_not_an_error() {
        let mut reader = RequestReader::new();
        let got = reader.read_request(&mut std::io::Cursor::new(Vec::new()), 1024, far()).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert_eq!(parse(b"NONSENSE\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET /x HTTP/9.9\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET  HTTP/1.1\r\n\r\n").unwrap_err().status(), 400);
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Identical or conflicting repeats are both message-boundary
        // ambiguities; RFC 7230 §3.3.2 requires rejection.
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.reason().contains("duplicate"), "{}", err.reason());
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\ncontent-length: 9\r\n\r\nabcd")
            .unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_non_digit_content_length_forms() {
        // `usize::from_str` accepts a leading `+`; the wire grammar
        // does not.
        for bad in ["+10", "-1", " 10", "0x10", "10 10", "1,0", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length:{bad}\r\n\r\n");
            let err = parse(raw.as_bytes()).unwrap_err();
            assert_eq!(err.status(), 400, "Content-Length {bad:?} must be rejected");
        }
        // A plain digit string still parses.
        assert!(parse(b"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n").is_ok());
    }

    #[test]
    fn rejects_oversized_bodies_and_heads() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
        let mut big = b"GET /x HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 16));
        assert_eq!(parse(&big).unwrap_err().status(), 431);
    }

    #[test]
    fn rejects_transfer_encoding() {
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn rejects_truncated_bodies() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn response_serialisation_includes_retry_after_and_disposition() {
        let mut out = Vec::new();
        let resp = Response {
            status: 503,
            content_type: "application/json",
            retry_after_s: Some(2),
            body: "{}".into(),
        };
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::text("ok".into()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"));
    }
}
