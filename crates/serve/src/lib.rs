//! # hmcs-serve
//!
//! A dependency-free evaluation **service daemon** for the HMCS
//! analytical model: the ROADMAP's "serve heavy traffic" direction made
//! concrete. Where `reproduce` evaluates the model in one-shot batch
//! runs, this crate keeps the model resident in a long-running process
//! and serves concurrent what-if queries over plain HTTP/1.1 — no
//! tokio, no hyper, no serde; `std::net` + the workspace's shared
//! [`hmcs_core::json`] module only.
//!
//! ## Endpoints
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /v1/evaluate` | One QNA point: JSON config in, latency / utilization / solver diagnostics out |
//! | `POST /v1/sweep` | A λ-, cluster- or message-size sweep over the same config |
//! | `POST /v1/optimize` | Capacity planning: SLO/budget/workload in, latency-vs-cost Pareto frontier out |
//! | `GET /healthz` | Liveness probe (`200 ok`) |
//! | `GET /metrics` | Text dump of the process-global metrics registry |
//! | `GET /version` | Schema + crate version |
//!
//! ## Serving-stack shape
//!
//! * **Admission control** — an acceptor thread feeds a bounded job
//!   queue ([`queue::Bounded`]); when the in-flight budget is
//!   exhausted the acceptor *sheds load* with `503` + `Retry-After`
//!   instead of queueing unboundedly ([`keys::ADMISSION_REJECTED`]).
//! * **Worker pool** — sized by [`hmcs_core::batch::BatchOptions`]'s
//!   worker policy (explicit, `HMCS_POOL_WORKERS`, or available
//!   parallelism), so the daemon and the batch engine obey the same
//!   operator knobs.
//! * **Keep-alive connections** — HTTP/1.1 persistent connections via
//!   a buffered per-connection reader ([`http::RequestReader`]) that
//!   carries pipelined bytes over between requests; responses to
//!   already-buffered requests are corked into one socket write.
//!   Idle timeouts and per-connection request caps bound how long one
//!   client can hold a worker.
//! * **Request coalescing** — identical concurrent evaluations share
//!   one computation ([`coalesce::Coalescer`]); followers receive a
//!   byte-identical clone of the leader's response. Keys generalise
//!   the `Debug`-rendering scheme of `hmcs-bench`'s sim cache.
//! * **Micro-batching** — with a non-zero gather window, *distinct*
//!   evaluate points arriving close together are grouped by a
//!   [`microbatch::Batcher`] into one `batch::par_map` call;
//!   bit-identical results, amortised scheduling.
//! * **Load generation** — [`loadgen`] implements the open-/closed-
//!   loop benchmark client behind the `hmcs-loadgen` binary.
//! * **Deadlines** — a request that waited in queue past its deadline
//!   is answered `503` without computing; socket reads/writes are
//!   bounded by the same budget, so a slow client cannot pin a worker.
//! * **Graceful drain** — shutdown stops the acceptor first, then
//!   drains every queued job before joining the workers: no accepted
//!   request is dropped mid-flight.
//! * **Live metrics** — every decision (accept, shed, coalesce,
//!   expire) is counted in the [`hmcs_core::metrics`] registry and
//!   visible at `GET /metrics` while the daemon runs.
//!
//! ## Quickstart
//!
//! ```no_run
//! use hmcs_serve::server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! // ... later, from a signal handler or test:
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod coalesce;
pub mod http;
pub mod loadgen;
pub mod microbatch;
pub mod queue;
pub mod server;

/// Metric names recorded by the daemon. All live in the process-global
/// [`hmcs_core::metrics`] registry, so they appear in `GET /metrics`
/// dumps alongside the solver/batch/simulator metrics.
pub mod keys {
    /// Counter: connections accepted into the job queue.
    pub const REQUESTS_ACCEPTED: &str = "serve.requests.accepted";
    /// Counter: requests a worker started processing.
    pub const REQUESTS_STARTED: &str = "serve.requests.started";
    /// Counter: `POST /v1/evaluate` requests routed.
    pub const REQ_EVALUATE: &str = "serve.requests.evaluate";
    /// Counter: `POST /v1/sweep` requests routed.
    pub const REQ_SWEEP: &str = "serve.requests.sweep";
    /// Counter: `POST /v1/optimize` requests routed.
    pub const REQ_OPTIMIZE: &str = "serve.requests.optimize";
    /// Counter: `GET /healthz` requests routed.
    pub const REQ_HEALTHZ: &str = "serve.requests.healthz";
    /// Counter: `GET /metrics` requests routed.
    pub const REQ_METRICS: &str = "serve.requests.metrics";
    /// Counter: requests to any other path/method.
    pub const REQ_OTHER: &str = "serve.requests.other";
    /// Counter: responses with a 2xx status.
    pub const STATUS_2XX: &str = "serve.responses.status_2xx";
    /// Counter: responses with a 4xx status.
    pub const STATUS_4XX: &str = "serve.responses.status_4xx";
    /// Counter: responses with a 5xx status.
    pub const STATUS_5XX: &str = "serve.responses.status_5xx";
    /// Counter: connections shed at admission (queue full → 503).
    pub const ADMISSION_REJECTED: &str = "serve.admission.rejected";
    /// Counter: requests whose queue wait exceeded the deadline.
    pub const DEADLINE_EXPIRED: &str = "serve.deadline.expired";
    /// Histogram: queue depth observed at each admission.
    pub const QUEUE_DEPTH: &str = "serve.queue.depth";
    /// Histogram: total request time from accept to response (µs).
    pub const REQUEST_US: &str = "serve.request_us";
    /// Counter: requests served from another request's computation.
    pub const COALESCE_HITS: &str = "serve.coalesce.hits";
    /// Counter: computations actually performed (coalescing leaders).
    pub const COALESCE_COMPUTATIONS: &str = "serve.coalesce.computations";
    /// Counter: micro-batches computed (each is one `par_map` call).
    pub const BATCH_BATCHES: &str = "serve.batch.batches";
    /// Counter: evaluate points carried inside micro-batches. The
    /// ratio to [`BATCH_BATCHES`] is the achieved mean batch size.
    pub const BATCH_BATCHED_ITEMS: &str = "serve.batch.items";
    /// Counter: kept-alive connections closed by the idle timeout.
    pub const CONN_IDLE_CLOSED: &str = "serve.conn.idle_closed";
    /// Counter: connections closed by the per-connection request cap.
    pub const CONN_CAP_CLOSED: &str = "serve.conn.cap_closed";
}
