//! The benchmark client behind `hmcs-loadgen`.
//!
//! Measures an `hmcs-serve` daemon from the outside, over real
//! sockets, in two complementary modes:
//!
//! * **Closed loop** — a fixed number of connections each keep a fixed
//!   number of requests in flight (the pipeline depth). Throughput is
//!   whatever the server sustains; latency excludes client-side
//!   queueing. This is the mode that answers "how fast can it go".
//! * **Open loop** — requests are issued on a fixed schedule at a
//!   target rate regardless of how fast responses return. Latency is
//!   measured from the request's *scheduled* time, so a server that
//!   falls behind shows the backlog in its tail latencies instead of
//!   silently slowing the generator (no coordinated omission). This is
//!   the mode that answers "what does the client see at rate X".
//!
//! The request mix is configurable: an evaluate/sweep split and a
//! message-size distribution sampled per request (distinct sizes are
//! distinct model points, so they exercise the server's micro-batcher
//! rather than its identical-request coalescer). Requests are
//! pre-serialised into byte templates once; the hot loop only copies
//! bytes and parses response heads.
//!
//! Results reduce to nearest-rank quantiles (P50/P90/P99/P99.9) over
//! the post-warm-up window plus achieved throughput, emitted as a
//! `hmcs-loadgen/1` JSON document that `benchgate serve` validates.

use hmcs_core::json::json_num;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fixed concurrency: each connection keeps `pipeline` requests in
    /// flight and refills as responses arrive.
    Closed {
        /// Requests kept in flight per connection.
        pipeline: usize,
    },
    /// Fixed schedule: `rate_per_s` requests per second spread evenly
    /// across the connections, issued whether or not responses return.
    Open {
        /// Aggregate target rate (requests/second) across connections.
        rate_per_s: f64,
    },
}

/// The request mix sampled per request.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Out of 1000 requests, how many are `POST /v1/sweep` (the rest
    /// are `POST /v1/evaluate`).
    pub sweep_permille: u32,
    /// `clusters` field of every generated config.
    pub clusters: usize,
    /// Message sizes sampled uniformly; each size is a distinct model
    /// point (own coalescing key), so the spread controls how much the
    /// server can coalesce versus batch.
    pub message_bytes: Vec<u64>,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig { sweep_permille: 0, clusters: 16, message_bytes: vec![256, 1024, 4096] }
    }
}

/// One benchmark run's shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Open or closed loop.
    pub mode: Mode,
    /// Concurrent connections.
    pub connections: usize,
    /// Measurement window (after warm-up).
    pub duration: Duration,
    /// Warm-up window; responses completing inside it are discarded.
    pub warmup: Duration,
    /// Request mix.
    pub mix: MixConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8377".into(),
            mode: Mode::Closed { pipeline: 16 },
            connections: 2,
            duration: Duration::from_secs(5),
            warmup: Duration::from_secs(1),
            mix: MixConfig::default(),
        }
    }
}

/// Latency quantiles over the measured window, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Worst observed.
    pub max: u64,
}

/// Everything a run produced.
#[derive(Debug, Clone)]
pub struct Summary {
    /// The configuration the run used.
    pub config: LoadgenConfig,
    /// Requests written to sockets (including warm-up).
    pub sent: u64,
    /// Responses fully read (including warm-up and errors).
    pub completed: u64,
    /// Responses with a non-200 status.
    pub errors: u64,
    /// Requests written but never answered (connection died or the run
    /// ended with requests in flight).
    pub dropped: u64,
    /// Times a connection had to be re-established mid-run.
    pub reconnects: u64,
    /// Successful responses inside the measurement window.
    pub measured_requests: u64,
    /// `measured_requests / duration`.
    pub achieved_rps: f64,
    /// Latency quantiles over the measured window.
    pub latency: LatencySummary,
}

/// Nearest-rank quantile: the smallest sample such that at least
/// `q·n` samples are ≤ it (`idx = ⌈q·n⌉ − 1` into the sorted slice).
/// `sorted` must be ascending and non-empty; `q` must be in `(0, 1]` —
/// out-of-range quantiles are a caller bug and panic instead of being
/// silently clamped to the min/max sample.
pub fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample set");
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
    // For q ∈ (0, 1] the rank is already in [1, n]; the clamp only
    // guards against float rounding at the boundaries.
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Sorts `samples_us` in place and reduces to [`LatencySummary`].
/// Returns the zero summary for an empty set.
pub fn reduce(samples_us: &mut [u64]) -> LatencySummary {
    if samples_us.is_empty() {
        return LatencySummary::default();
    }
    samples_us.sort_unstable();
    let sum: u128 = samples_us.iter().map(|&s| s as u128).sum();
    LatencySummary {
        p50: nearest_rank(samples_us, 0.50),
        p90: nearest_rank(samples_us, 0.90),
        p99: nearest_rank(samples_us, 0.99),
        p999: nearest_rank(samples_us, 0.999),
        mean: sum as f64 / samples_us.len() as f64,
        max: *samples_us.last().expect("non-empty"),
    }
}

impl Summary {
    /// Renders the `hmcs-loadgen/1` result document.
    pub fn to_json(&self) -> String {
        let (mode, pipeline, target_rps) = match self.config.mode {
            Mode::Closed { pipeline } => ("closed", pipeline.to_string(), "null".to_string()),
            Mode::Open { rate_per_s } => ("open", "null".to_string(), json_num(rate_per_s)),
        };
        format!(
            concat!(
                r#"{{"schema":"hmcs-loadgen/1","mode":"{mode}","addr":"{addr}","#,
                r#""connections":{connections},"pipeline":{pipeline},"target_rps":{target_rps},"#,
                r#""duration_s":{duration},"warmup_s":{warmup},"#,
                r#""mix":{{"sweep_permille":{sweep_permille},"clusters":{clusters},"message_bytes":[{message_bytes}]}},"#,
                r#""requests":{{"sent":{sent},"completed":{completed},"errors":{errors},"dropped":{dropped},"reconnects":{reconnects}}},"#,
                r#""measured":{{"requests":{measured},"achieved_rps":{rps},"#,
                r#""latency_us":{{"p50":{p50},"p90":{p90},"p99":{p99},"p999":{p999},"mean":{mean},"max":{max}}}}}}}"#,
            ),
            mode = mode,
            addr = self.config.addr,
            connections = self.config.connections,
            pipeline = pipeline,
            target_rps = target_rps,
            duration = json_num(self.config.duration.as_secs_f64()),
            warmup = json_num(self.config.warmup.as_secs_f64()),
            sweep_permille = self.config.mix.sweep_permille,
            clusters = self.config.mix.clusters,
            message_bytes = self
                .config
                .mix
                .message_bytes
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(","),
            sent = self.sent,
            completed = self.completed,
            errors = self.errors,
            dropped = self.dropped,
            reconnects = self.reconnects,
            measured = self.measured_requests,
            rps = json_num(self.achieved_rps),
            p50 = self.latency.p50,
            p90 = self.latency.p90,
            p99 = self.latency.p99,
            p999 = self.latency.p999,
            mean = json_num(self.latency.mean),
            max = self.latency.max,
        )
    }
}

/// SplitMix64 — tiny, seedable, good enough for sampling a request
/// mix. Deterministic per connection so runs are reproducible.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Pre-serialised request bytes, one template per (endpoint, message
/// size) pair. Built once; the hot loop only copies.
struct Templates {
    evaluate: Vec<Vec<u8>>,
    sweep: Vec<Vec<u8>>,
    sweep_permille: u32,
}

fn render_request(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

impl Templates {
    fn build(mix: &MixConfig) -> Templates {
        let evaluate = mix
            .message_bytes
            .iter()
            .map(|m| {
                render_request(
                    "/v1/evaluate",
                    &format!(r#"{{"clusters":{},"message_bytes":{m}}}"#, mix.clusters),
                )
            })
            .collect();
        let sweep = mix
            .message_bytes
            .iter()
            .map(|m| {
                render_request(
                    "/v1/sweep",
                    &format!(
                        r#"{{"clusters":{},"message_bytes":{m},"parameter":"lambda","values":[5e-5,1e-4,2e-4,4e-4]}}"#,
                        mix.clusters
                    ),
                )
            })
            .collect();
        Templates { evaluate, sweep, sweep_permille: mix.sweep_permille }
    }

    fn pick(&self, rng: &mut SplitMix64) -> &[u8] {
        let r = rng.next_u64();
        let pool =
            if (r % 1000) < self.sweep_permille as u64 { &self.sweep } else { &self.evaluate };
        &pool[(r >> 10) as usize % pool.len()]
    }
}

/// Read-timeout slice for client sockets; response reads retry against
/// their own deadline.
const IO_SLICE: Duration = Duration::from_millis(100);

/// How long to wait for any single response before declaring the
/// connection dead.
const RESPONSE_PATIENCE: Duration = Duration::from_secs(10);

/// A buffered response reader: one socket read can carry many
/// pipelined responses; the buffer carries partial ones over.
struct RespReader {
    buf: Vec<u8>,
}

impl RespReader {
    fn new() -> Self {
        RespReader { buf: Vec::with_capacity(4096) }
    }

    fn reset(&mut self) {
        self.buf.clear();
    }

    /// Reads one full response; returns `(status, server_will_close)`.
    fn read_response(
        &mut self,
        stream: &mut impl Read,
        deadline: Instant,
    ) -> std::io::Result<(u16, bool)> {
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            fill(&mut self.buf, stream, &mut chunk, deadline)?;
        };
        let head = std::str::from_utf8(&self.buf[..head_end - 4])
            .map_err(|_| bad_response("non-UTF-8 response head"))?;
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_response("unparseable status line"))?;
        let mut content_length: usize = 0;
        let mut close = false;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad_response("unparseable content-length"))?;
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.trim().eq_ignore_ascii_case("close");
                }
            }
        }
        self.buf.drain(..head_end);
        while self.buf.len() < content_length {
            fill(&mut self.buf, stream, &mut chunk, deadline)?;
        }
        self.buf.drain(..content_length);
        Ok((status, close))
    }
}

fn bad_response(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn fill(
    buf: &mut Vec<u8>,
    stream: &mut impl Read,
    chunk: &mut [u8],
    deadline: Instant,
) -> std::io::Result<()> {
    loop {
        match stream.read(chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ))
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) && Instant::now() < deadline =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Per-worker outcome, merged by [`run`].
#[derive(Default)]
struct Tally {
    sent: u64,
    completed: u64,
    errors: u64,
    dropped: u64,
    reconnects: u64,
    samples_us: Vec<u64>,
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IO_SLICE))?;
    Ok(stream)
}

/// Runs the configured benchmark to completion. Total wall time is
/// `warmup + duration` plus drain slack.
pub fn run(config: &LoadgenConfig) -> std::io::Result<Summary> {
    assert!(config.connections > 0, "at least one connection");
    let templates = Arc::new(Templates::build(&config.mix));
    let start = Instant::now();
    let warmup_until = start + config.warmup;
    let stop_at = warmup_until + config.duration;

    let workers: Vec<_> = (0..config.connections)
        .map(|i| {
            let templates = Arc::clone(&templates);
            let config = config.clone();
            let seed = 0xC0FF_EE00 + i as u64;
            std::thread::Builder::new()
                .name(format!("hmcs-loadgen-{i}"))
                .spawn(move || match config.mode {
                    Mode::Closed { pipeline } => closed_loop(
                        &config.addr,
                        &templates,
                        pipeline.max(1),
                        warmup_until,
                        stop_at,
                        seed,
                    ),
                    Mode::Open { rate_per_s } => open_loop(
                        &config.addr,
                        &templates,
                        rate_per_s / config.connections as f64,
                        start,
                        warmup_until,
                        stop_at,
                        seed,
                    ),
                })
                .expect("spawn loadgen worker")
        })
        .collect();

    let mut total = Tally::default();
    for worker in workers {
        let tally = worker.join().expect("loadgen worker panicked")?;
        total.sent += tally.sent;
        total.completed += tally.completed;
        total.errors += tally.errors;
        total.dropped += tally.dropped;
        total.reconnects += tally.reconnects;
        total.samples_us.extend(tally.samples_us);
    }

    let latency = reduce(&mut total.samples_us);
    let measured_requests = total.samples_us.len() as u64;
    Ok(Summary {
        config: config.clone(),
        sent: total.sent,
        completed: total.completed,
        errors: total.errors,
        dropped: total.dropped,
        reconnects: total.reconnects,
        measured_requests,
        achieved_rps: measured_requests as f64 / config.duration.as_secs_f64().max(1e-9),
        latency,
    })
}

/// Closed loop: keep `pipeline` requests in flight, refilling with one
/// corked write whenever in-flight count drops to half the depth —
/// batched writes amortise syscalls, which is what lets a single-core
/// host push past 100k req/s.
fn closed_loop(
    addr: &str,
    templates: &Templates,
    pipeline: usize,
    warmup_until: Instant,
    stop_at: Instant,
    seed: u64,
) -> std::io::Result<Tally> {
    let mut stream = connect(addr)?;
    let mut rng = SplitMix64::new(seed);
    let mut reader = RespReader::new();
    let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(pipeline);
    let mut out: Vec<u8> = Vec::with_capacity(pipeline * 128);
    let mut tally = Tally::default();

    loop {
        let now = Instant::now();
        if now >= stop_at {
            break;
        }
        if inflight.len() <= pipeline / 2 {
            out.clear();
            let batch_start = inflight.len();
            while inflight.len() < pipeline {
                out.extend_from_slice(templates.pick(&mut rng));
                inflight.push_back(now);
            }
            stream.write_all(&out)?;
            tally.sent += (pipeline - batch_start) as u64;
        }
        match reader.read_response(&mut stream, now + RESPONSE_PATIENCE) {
            Ok((status, close)) => {
                let sent_at = inflight.pop_front().expect("response without a request");
                let done = Instant::now();
                tally.completed += 1;
                if status != 200 {
                    tally.errors += 1;
                } else if done >= warmup_until {
                    tally.samples_us.push(done.duration_since(sent_at).as_micros() as u64);
                }
                if close {
                    // The server is evicting us (request cap or
                    // shutdown); requests pipelined behind the final
                    // response will never be answered.
                    tally.dropped += inflight.len() as u64;
                    inflight.clear();
                    reader.reset();
                    tally.reconnects += 1;
                    stream = connect(addr)?;
                }
            }
            Err(_) => {
                tally.dropped += inflight.len() as u64;
                inflight.clear();
                reader.reset();
                tally.reconnects += 1;
                stream = connect(addr)?;
            }
        }
    }
    // Requests still in flight at the bell are simply not measured.
    tally.dropped += inflight.len() as u64;
    Ok(tally)
}

/// Open loop: a sender thread issues requests on the fixed schedule
/// `start + i/rate` while this thread reads responses. Latency is
/// measured from the *scheduled* send time, so server backlog appears
/// in the tail instead of being hidden by a slowed generator.
fn open_loop(
    addr: &str,
    templates: &Templates,
    rate_per_s: f64,
    start: Instant,
    warmup_until: Instant,
    stop_at: Instant,
    seed: u64,
) -> std::io::Result<Tally> {
    assert!(rate_per_s > 0.0, "open loop needs a positive rate");
    let stream = connect(addr)?;
    let mut read_half = stream.try_clone()?;
    let pending: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));
    let sender_done = Arc::new(AtomicBool::new(false));
    let dead = Arc::new(AtomicBool::new(false));

    let sender = {
        let pending = Arc::clone(&pending);
        let sender_done = Arc::clone(&sender_done);
        let dead = Arc::clone(&dead);
        let mut write_half = stream;
        let mut rng = SplitMix64::new(seed);
        // The byte templates are small and built once per run, so the
        // sender thread takes its own copy rather than a borrow.
        let evaluate = templates.evaluate.clone();
        let sweep = templates.sweep.clone();
        let sweep_permille = templates.sweep_permille;
        std::thread::Builder::new()
            .name("hmcs-loadgen-sender".into())
            .spawn(move || -> u64 {
                let templates = Templates { evaluate, sweep, sweep_permille };
                let mut sent: u64 = 0;
                let mut out: Vec<u8> = Vec::with_capacity(4096);
                loop {
                    let due = start + Duration::from_secs_f64(sent as f64 / rate_per_s);
                    if due >= stop_at || dead.load(Ordering::SeqCst) {
                        break;
                    }
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    // Issue every request that is due by now in one
                    // corked write (catch-up after a stall stays on
                    // schedule instead of sliding).
                    out.clear();
                    let mut batch: Vec<Instant> = Vec::new();
                    let mut next_due = due;
                    while next_due <= Instant::now() && next_due < stop_at {
                        out.extend_from_slice(templates.pick(&mut rng));
                        batch.push(next_due);
                        next_due = start
                            + Duration::from_secs_f64(
                                (sent + batch.len() as u64) as f64 / rate_per_s,
                            );
                    }
                    if write_half.write_all(&out).is_err() {
                        dead.store(true, Ordering::SeqCst);
                        break;
                    }
                    sent += batch.len() as u64;
                    pending.lock().expect("pending poisoned").extend(batch);
                }
                sender_done.store(true, Ordering::SeqCst);
                sent
            })
            .expect("spawn loadgen sender")
    };

    let mut reader = RespReader::new();
    let mut tally = Tally::default();
    loop {
        let waiting = { pending.lock().expect("pending poisoned").front().copied() };
        let Some(scheduled) = waiting else {
            if sender_done.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
            continue;
        };
        match reader.read_response(&mut read_half, Instant::now() + RESPONSE_PATIENCE) {
            Ok((status, close)) => {
                pending.lock().expect("pending poisoned").pop_front();
                let done = Instant::now();
                tally.completed += 1;
                if status != 200 {
                    tally.errors += 1;
                } else if done >= warmup_until {
                    tally.samples_us.push(done.duration_since(scheduled).as_micros() as u64);
                }
                if close {
                    dead.store(true, Ordering::SeqCst);
                    break;
                }
            }
            Err(_) => {
                dead.store(true, Ordering::SeqCst);
                break;
            }
        }
    }
    tally.sent = sender.join().expect("loadgen sender panicked");
    tally.dropped += pending.lock().expect("pending poisoned").len() as u64;
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_quantiles_match_the_known_distribution() {
        // Golden: samples 1..=1000 (already sorted). Nearest-rank on a
        // set this shape reads the quantile straight off the value.
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(nearest_rank(&sorted, 0.50), 500);
        assert_eq!(nearest_rank(&sorted, 0.90), 900);
        assert_eq!(nearest_rank(&sorted, 0.99), 990);
        assert_eq!(nearest_rank(&sorted, 0.999), 999);
        assert_eq!(nearest_rank(&sorted, 1.0), 1000);
    }

    #[test]
    fn nearest_rank_edge_cases_on_tiny_sets() {
        // n = 1: every quantile is the single sample.
        assert_eq!(nearest_rank(&[7], 1e-9), 7);
        assert_eq!(nearest_rank(&[7], 0.5), 7);
        assert_eq!(nearest_rank(&[7], 0.999), 7);
        assert_eq!(nearest_rank(&[7], 1.0), 7);
        // n = 2: the split sits at q = 0.5 (⌈q·2⌉ flips above it).
        assert_eq!(nearest_rank(&[3, 9], 0.5), 3);
        assert_eq!(nearest_rank(&[3, 9], 0.500001), 9);
        assert_eq!(nearest_rank(&[3, 9], 0.999), 9);
        assert_eq!(nearest_rank(&[3, 9], 1.0), 9);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn nearest_rank_rejects_zero_quantile() {
        nearest_rank(&[1, 2, 3], 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn nearest_rank_rejects_quantiles_above_one() {
        nearest_rank(&[1, 2, 3], 1.5);
    }

    /// The definition, computed the slow way: the smallest sample with
    /// at least `⌈q·n⌉` samples at or below it.
    fn counting_oracle(sorted: &[u64], q: f64) -> u64 {
        let need = (q * sorted.len() as f64).ceil();
        for &candidate in sorted {
            let at_or_below = sorted.iter().filter(|&&s| s <= candidate).count();
            if at_or_below as f64 >= need {
                return candidate;
            }
        }
        *sorted.last().expect("non-empty")
    }

    #[test]
    fn nearest_rank_matches_the_counting_oracle_on_random_samples() {
        let mut rng = SplitMix64::new(0xDEAD_BEEF);
        for trial in 0..200 {
            let n = 1 + (rng.next_u64() % 64) as usize;
            // Duplicate-heavy values stress the "smallest such sample"
            // part of the definition.
            let mut samples: Vec<u64> = (0..n).map(|_| rng.next_u64() % 16).collect();
            samples.sort_unstable();
            for &q in &[1e-6, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(
                    nearest_rank(&samples, q),
                    counting_oracle(&samples, q),
                    "trial {trial}: n={n} q={q} samples={samples:?}"
                );
            }
            // A handful of random quantiles in (0, 1] per trial.
            for _ in 0..8 {
                let q = ((rng.next_u64() % 1_000_000) + 1) as f64 / 1_000_000.0;
                assert_eq!(nearest_rank(&samples, q), counting_oracle(&samples, q));
            }
        }
    }

    #[test]
    fn reduce_sorts_and_summarises() {
        let mut samples: Vec<u64> = (1..=1000).rev().collect();
        let summary = reduce(&mut samples);
        assert_eq!(summary.p50, 500);
        assert_eq!(summary.p90, 900);
        assert_eq!(summary.p99, 990);
        assert_eq!(summary.p999, 999);
        assert_eq!(summary.max, 1000);
        assert!((summary.mean - 500.5).abs() < 1e-9);
        assert_eq!(reduce(&mut []), LatencySummary::default());
    }

    #[test]
    fn resp_reader_handles_pipelined_responses_and_carry_over() {
        let mut wire = Vec::new();
        crate::http::write_response(
            &mut wire,
            &crate::http::Response::json("{\"a\":1}".into()),
            false,
        )
        .unwrap();
        crate::http::write_response(
            &mut wire,
            &crate::http::Response {
                status: 503,
                content_type: "application/json",
                retry_after_s: Some(1),
                body: "{}".into(),
            },
            true,
        )
        .unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut reader = RespReader::new();
        let far = Instant::now() + Duration::from_secs(5);
        assert_eq!(reader.read_response(&mut cursor, far).unwrap(), (200, false));
        assert_eq!(reader.read_response(&mut cursor, far).unwrap(), (503, true));
        let err = reader.read_response(&mut cursor, far).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn templates_cover_the_mix_and_parse_as_valid_requests() {
        let mix = MixConfig { sweep_permille: 500, clusters: 16, message_bytes: vec![256, 1024] };
        let templates = Templates::build(&mix);
        assert_eq!(templates.evaluate.len(), 2);
        assert_eq!(templates.sweep.len(), 2);
        let mut rng = SplitMix64::new(42);
        let mut saw_sweep = false;
        let mut saw_evaluate = false;
        for _ in 0..200 {
            let raw = templates.pick(&mut rng);
            let mut reader = crate::http::RequestReader::new();
            let req = reader
                .read_request(
                    &mut std::io::Cursor::new(raw.to_vec()),
                    1 << 20,
                    Instant::now() + Duration::from_secs(1),
                )
                .unwrap()
                .unwrap();
            match req.path.as_str() {
                "/v1/evaluate" => {
                    saw_evaluate = true;
                    crate::api::parse_evaluate(std::str::from_utf8(&req.body).unwrap()).unwrap();
                }
                "/v1/sweep" => {
                    saw_sweep = true;
                    crate::api::parse_sweep(std::str::from_utf8(&req.body).unwrap()).unwrap();
                }
                other => panic!("unexpected template path {other}"),
            }
        }
        assert!(saw_evaluate && saw_sweep, "a 50/50 mix must produce both kinds");
    }

    #[test]
    fn summary_json_is_valid_and_carries_the_headline_numbers() {
        let summary = Summary {
            config: LoadgenConfig::default(),
            sent: 1200,
            completed: 1180,
            errors: 0,
            dropped: 20,
            reconnects: 1,
            measured_requests: 1000,
            achieved_rps: 200.0,
            latency: LatencySummary {
                p50: 80,
                p90: 120,
                p99: 300,
                p999: 900,
                mean: 95.5,
                max: 1200,
            },
        };
        let doc = hmcs_core::json::parse_json(&summary.to_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("hmcs-loadgen/1"));
        let measured = doc.get("measured").expect("measured object");
        assert_eq!(measured.get("achieved_rps").and_then(|v| v.as_num()), Some(200.0));
        let latency = measured.get("latency_us").expect("latency object");
        assert_eq!(latency.get("p999").and_then(|v| v.as_num()), Some(900.0));
        assert_eq!(
            doc.get("requests").and_then(|r| r.get("errors")).and_then(|v| v.as_num()),
            Some(0.0)
        );
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }
}
