//! Cross-request micro-batching of *distinct* computations.
//!
//! The [`crate::coalesce::Coalescer`] deduplicates concurrent
//! **identical** requests; this module handles the complementary case:
//! distinct evaluate points arriving close together in time. The first
//! arrival becomes the batch *leader*: it waits one small gather
//! window, takes every request that joined meanwhile, and runs the
//! whole flattened batch through a single batch-engine call (one
//! `kernel::evaluate_batch` solve at the call site) — turning N
//! independent model evaluations into one fan-out with shared
//! scheduling overhead. Followers block on a per-group slot and
//! receive exactly their own results.
//!
//! Submissions are *groups* of items ([`Batcher::submit_many`]): a
//! `/v1/evaluate` request contributes a group of one config, a
//! `/v1/sweep` request contributes one config per sweep point, and all
//! groups sharing a window are solved in one flattened kernel batch.
//! Each submitter gets back its own slice of the results, in its own
//! input order.
//!
//! Because the batch function is required to be a pure per-item map
//! (the server passes `kernel::evaluate_batch`, whose lanes are
//! bit-identical to the scalar path and invariant under batch
//! composition by construction), batching changes scheduling only,
//! never bytes.
//!
//! Requests arriving while a leader is computing start a *new* gather
//! generation, so batches pipeline under sustained load rather than
//! convoying behind the previous batch.
//!
//! A leader that panics abandons its followers' slots (they fail fast
//! and the server degrades to load shedding) instead of stranding them
//! — the same contract as the coalescer's `LeaderGuard`.

use crate::keys;
use hmcs_core::metrics;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct SlotState<V> {
    value: Option<Vec<V>>,
    abandoned: bool,
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

impl<V> Slot<V> {
    fn empty() -> Self {
        Slot {
            state: Mutex::new(SlotState { value: None, abandoned: false }),
            ready: Condvar::new(),
        }
    }
}

struct Gather<T, V> {
    gathering: bool,
    pending: Vec<(Vec<T>, Arc<Slot<V>>)>,
}

/// The boxed batch computation: a pure per-item map over the flattened
/// gathered items (`kernel::evaluate_batch` in the server).
type BatchFn<T, V> = Box<dyn Fn(&[T]) -> Vec<V> + Send + Sync>;

/// Groups temporally close distinct items into one batched computation.
pub struct Batcher<T, V> {
    window: Duration,
    compute: BatchFn<T, V>,
    state: Mutex<Gather<T, V>>,
}

/// Marks the followers of a failed batch abandoned on unwind so a
/// panicking batch computation cannot strand them on slots that will
/// never fill.
struct AbandonGuard<'a, V> {
    slots: &'a [Arc<Slot<V>>],
    completed: bool,
}

impl<V> Drop for AbandonGuard<'_, V> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        for slot in self.slots {
            slot.state.lock().expect("batch slot poisoned").abandoned = true;
            slot.ready.notify_all();
        }
    }
}

impl<T, V> Batcher<T, V> {
    /// Creates a batcher gathering arrivals for `window` per batch.
    /// `compute` must map each input item to its output positionally —
    /// a pure per-item function, typically `kernel::evaluate_batch`.
    pub fn new(window: Duration, compute: impl Fn(&[T]) -> Vec<V> + Send + Sync + 'static) -> Self {
        Batcher {
            window,
            compute: Box::new(compute),
            state: Mutex::new(Gather { gathering: false, pending: Vec::new() }),
        }
    }

    /// Submits one item. Equivalent to a [`Batcher::submit_many`] group
    /// of one. Returns `None` when the wait budget lapses or the leader
    /// panicked.
    pub fn submit(&self, item: T, wait_budget: Duration) -> Option<V> {
        let mut values = self.submit_many(vec![item], wait_budget)?;
        debug_assert_eq!(values.len(), 1, "one result per submitted item");
        values.pop()
    }

    /// Submits a group of items that travel through the gather window
    /// together. The caller either leads a batch (gather, flatten every
    /// pending group into one `compute` call, distribute each group its
    /// own slice) or follows one (block until the leader delivers, at
    /// most `wait_budget`). Returns the group's results in input order,
    /// or `None` when the wait budget lapses or the leader panicked.
    pub fn submit_many(&self, items: Vec<T>, wait_budget: Duration) -> Option<Vec<V>> {
        if items.is_empty() {
            return Some(Vec::new());
        }
        let group = {
            let mut state = self.state.lock().expect("batcher poisoned");
            if state.gathering {
                let slot = Arc::new(Slot::empty());
                state.pending.push((items, Arc::clone(&slot)));
                drop(state);
                return follow(&slot, wait_budget);
            }
            state.gathering = true;
            items
        };

        // Leader: hold the gather window open, then take the batch.
        if !self.window.is_zero() {
            std::thread::sleep(self.window);
        }
        let followers = {
            let mut state = self.state.lock().expect("batcher poisoned");
            state.gathering = false;
            std::mem::take(&mut state.pending)
        };
        // Flatten leader + follower groups into one batch; remember
        // each follower's group length to slice the results back out.
        let leader_len = group.len();
        let mut flat = group;
        let mut slots = Vec::with_capacity(followers.len());
        let mut group_lens = Vec::with_capacity(followers.len());
        for (follower_items, slot) in followers {
            group_lens.push(follower_items.len());
            flat.extend(follower_items);
            slots.push(slot);
        }

        let mut guard = AbandonGuard { slots: &slots, completed: false };
        let values = (self.compute)(&flat);
        assert_eq!(values.len(), flat.len(), "batch compute must be a per-item map");
        metrics::counter(keys::BATCH_BATCHES).incr();
        metrics::counter(keys::BATCH_BATCHED_ITEMS).add(flat.len() as u64);

        // The leader's own results are the head of the flattened batch;
        // each follower receives the next `group_len` values.
        let mut values = values.into_iter();
        let leader_values: Vec<V> = values.by_ref().take(leader_len).collect();
        for (&group_len, slot) in group_lens.iter().zip(&slots) {
            let group_values: Vec<V> = values.by_ref().take(group_len).collect();
            let mut slot_state = slot.state.lock().expect("batch slot poisoned");
            slot_state.value = Some(group_values);
            drop(slot_state);
            slot.ready.notify_all();
        }
        guard.completed = true;
        Some(leader_values)
    }

    /// Items currently waiting in an open gather window (tests only).
    pub fn pending_len(&self) -> usize {
        self.state.lock().expect("batcher poisoned").pending.iter().map(|(g, _)| g.len()).sum()
    }
}

fn follow<V>(slot: &Slot<V>, wait_budget: Duration) -> Option<Vec<V>> {
    let deadline = Instant::now() + wait_budget;
    let mut state = slot.state.lock().expect("batch slot poisoned");
    loop {
        if state.value.is_some() {
            return state.value.take();
        }
        if state.abandoned {
            return None;
        }
        let remaining = deadline.checked_duration_since(Instant::now())?;
        state = slot.ready.wait_timeout(state, remaining).expect("batch slot poisoned").0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn solo_submit_computes_a_batch_of_one() {
        let batcher = Batcher::new(Duration::from_millis(1), |items: &[u32]| {
            items.iter().map(|x| x * 2).collect()
        });
        assert_eq!(batcher.submit(21, Duration::from_secs(1)), Some(42));
        assert_eq!(batcher.pending_len(), 0);
    }

    #[test]
    fn zero_window_degenerates_to_immediate_compute() {
        let batcher =
            Batcher::new(Duration::ZERO, |items: &[u32]| items.iter().map(|x| x + 1).collect());
        assert_eq!(batcher.submit(7, Duration::from_secs(1)), Some(8));
    }

    #[test]
    fn concurrent_distinct_items_share_one_computation() {
        const N: usize = 6;
        let calls = Arc::new(AtomicUsize::new(0));
        let batcher: Arc<Batcher<u32, u32>> = {
            let calls = Arc::clone(&calls);
            Arc::new(Batcher::new(Duration::from_millis(200), move |items: &[u32]| {
                calls.fetch_add(1, Ordering::SeqCst);
                items.iter().map(|x| x * 10).collect()
            }))
        };
        let barrier = Arc::new(Barrier::new(N));
        let handles: Vec<_> = (0..N as u32)
            .map(|i| {
                let (batcher, barrier) = (Arc::clone(&batcher), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    batcher.submit(i, Duration::from_secs(10))
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Each submitter gets exactly its own item's result back.
        let mut got: Vec<u32> = results.into_iter().map(|r| r.unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..N as u32).map(|i| i * 10).collect::<Vec<_>>());
        // Everyone arrived inside the 200 ms window, so one batch ran.
        assert_eq!(calls.load(Ordering::SeqCst), 1, "distinct items must share one batch");
        assert_eq!(batcher.pending_len(), 0);
    }

    #[test]
    fn mixed_groups_share_one_computation_and_get_their_own_slices() {
        const GROUPS: usize = 4;
        let calls = Arc::new(AtomicUsize::new(0));
        let batcher: Arc<Batcher<u32, u32>> = {
            let calls = Arc::clone(&calls);
            Arc::new(Batcher::new(Duration::from_millis(200), move |items: &[u32]| {
                calls.fetch_add(1, Ordering::SeqCst);
                items.iter().map(|x| x * 10).collect()
            }))
        };
        let barrier = Arc::new(Barrier::new(GROUPS));
        // Group g submits g+1 items (sizes 1..=4), like one evaluate
        // request and three sweeps of growing size sharing a window.
        let handles: Vec<_> = (0..GROUPS as u32)
            .map(|g| {
                let (batcher, barrier) = (Arc::clone(&batcher), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    let group: Vec<u32> = (0..=g).map(|k| g * 100 + k).collect();
                    barrier.wait();
                    (group.clone(), batcher.submit_many(group, Duration::from_secs(10)))
                })
            })
            .collect();
        for handle in handles {
            let (group, result) = handle.join().unwrap();
            let expected: Vec<u32> = group.iter().map(|x| x * 10).collect();
            assert_eq!(result.unwrap(), expected, "each group gets its own slice in order");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "groups share one flattened batch");
        assert_eq!(batcher.pending_len(), 0);
    }

    #[test]
    fn empty_group_returns_immediately() {
        let batcher = Batcher::new(Duration::from_millis(200), |items: &[u32]| items.to_vec());
        assert_eq!(batcher.submit_many(Vec::new(), Duration::from_secs(1)), Some(Vec::new()));
        assert_eq!(batcher.pending_len(), 0);
    }

    #[test]
    fn followers_time_out_rather_than_hang() {
        let batcher: Arc<Batcher<u32, u32>> =
            Arc::new(Batcher::new(Duration::from_millis(400), |items: &[u32]| items.to_vec()));
        let leader = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || batcher.submit(1, Duration::from_secs(5)))
        };
        // Join the leader's gather window, but with a tiny budget.
        assert!(
            poll(Duration::from_secs(1), || batcher.state.lock().unwrap().gathering),
            "leader must be gathering"
        );
        let follower = batcher.submit(2, Duration::from_millis(10));
        assert_eq!(follower, None, "budget shorter than the window times out");
        assert_eq!(leader.join().unwrap(), Some(1));
    }

    #[test]
    fn panicking_leader_abandons_followers() {
        let batcher: Arc<Batcher<u32, u32>> =
            Arc::new(Batcher::new(Duration::from_millis(200), |items: &[u32]| {
                if items.contains(&13) {
                    panic!("doomed batch");
                }
                items.to_vec()
            }));
        let leader = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || batcher.submit(13, Duration::from_secs(5)))
        };
        assert!(
            poll(Duration::from_secs(1), || batcher.state.lock().unwrap().gathering),
            "leader must be gathering"
        );
        let follower = batcher.submit(2, Duration::from_secs(5));
        assert_eq!(follower, None, "followers of a panicked batch fail fast");
        assert!(leader.join().is_err(), "leader panicked by design");
        // The batcher recovers: the next submit leads a fresh batch.
        assert_eq!(batcher.submit(3, Duration::from_secs(1)), Some(3));
        assert_eq!(batcher.pending_len(), 0);
    }

    fn poll(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }
}
