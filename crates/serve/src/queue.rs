//! A bounded MPMC job queue with non-blocking admission.
//!
//! The serving stack's backpressure primitive: the acceptor thread
//! offers jobs with [`Bounded::try_push`] (which *fails fast* when the
//! budget is exhausted, so the caller can shed load with `503` instead
//! of queueing unboundedly), and worker threads block in
//! [`Bounded::pop`] until a job arrives or the queue is closed *and*
//! drained — the drain guarantee is what makes graceful shutdown drop
//! no accepted request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed load.
    Full,
    /// The queue was closed — the server is shutting down.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue admitting at most `capacity` pending jobs
    /// (floored at 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Offers `item` without blocking. Returns it on refusal so the
    /// caller can respond to the client it belongs to.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the next job, blocking while the queue is open and empty.
    /// Returns `None` only when the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: no further pushes are admitted, and workers
    /// drain the remaining jobs before their `pop` returns `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Jobs currently waiting (racy by nature; metrics only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True when no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trips_in_order() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn admission_fails_fast_at_capacity() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err((2, PushError::Closed)));
        assert_eq!(q.pop(), Some(1), "queued jobs survive close");
        assert_eq!(q.pop(), None, "drained + closed terminates consumers");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_on_close() {
        let q = Arc::new(Bounded::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for v in 0..32 {
            // The bounded queue never blocks producers; emulate an
            // acceptor retrying a full queue.
            let mut item = v;
            while let Err((rejected, PushError::Full)) = q.try_push(item) {
                item = rejected;
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = Bounded::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err((2, PushError::Full)));
    }
}
