//! The serving loop: acceptor thread, bounded queue, worker pool.
//!
//! ## Lifecycle
//!
//! [`Server::start`] binds the listener, spawns one acceptor thread
//! and a pool of workers, and returns immediately. The acceptor admits
//! connections into a [`queue::Bounded`]; when the queue is full it
//! answers `503` + `Retry-After` inline without occupying a worker
//! (load shedding). Workers pop jobs, parse the request, route it, and
//! write the response — one request per connection.
//!
//! ## Deadlines
//!
//! [`ServerConfig::deadline`] bounds the time from accept to the start
//! of processing: a job that sat in queue longer is answered `503`
//! without computing (its result would be stale anyway — the client
//! has likely timed out). The remaining budget also bounds socket
//! reads/writes and the wait of a coalescing follower, so a slow peer
//! cannot pin a worker indefinitely.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the acceptor first, then closes the
//! queue. Workers drain every job that was already admitted before
//! exiting — an accepted request is never dropped mid-flight.

use crate::coalesce::Coalescer;
use crate::http::{self, Request, Response};
use crate::queue::Bounded;
use crate::{api, keys};
use hmcs_core::batch::BatchOptions;
use hmcs_core::metrics;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 asks the OS for a free port (tests).
    pub addr: String,
    /// Worker threads; 0 defers to [`BatchOptions`]'s policy
    /// (`HMCS_POOL_WORKERS` or available parallelism).
    pub workers: usize,
    /// Bounded queue capacity — the admission budget beyond the
    /// requests currently being processed.
    pub queue_capacity: usize,
    /// Per-request budget from accept to processing; also bounds
    /// socket I/O and coalescing waits.
    pub deadline: Duration,
    /// Value of the `Retry-After` header on shed responses.
    pub retry_after_s: u64,
    /// Hard cap on request bodies.
    pub max_body_bytes: usize,
    /// Artificial pre-compute latency on `/v1/*` requests. Fault
    /// injection for tests and soak runs (deterministically provokes
    /// queue buildup, shedding and deadline expiry); zero in service.
    pub handler_latency: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8377".into(),
            workers: 0,
            queue_capacity: 64,
            deadline: Duration::from_secs(10),
            retry_after_s: 1,
            max_body_bytes: 1 << 20,
            handler_latency: Duration::ZERO,
        }
    }
}

/// One admitted connection, timestamped for deadline accounting.
struct Job {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Shared state between the acceptor and the workers.
struct Shared {
    config: ServerConfig,
    queue: Bounded<Job>,
    coalescer: Coalescer<Response>,
    shutdown: AtomicBool,
}

/// A running daemon. Dropping the handle without calling
/// [`Server::shutdown`] leaves the threads serving (detached).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the serving threads.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let worker_count = if config.workers == 0 {
            BatchOptions::default().resolved_workers()
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            coalescer: Coalescer::new(),
            shutdown: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hmcs-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hmcs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server { shared, local_addr, acceptor, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Jobs currently waiting in the admission queue (tests/metrics).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops accepting, drains every admitted request, joins all
    /// threads. Blocks until the drain completes.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor observes the flag within one poll interval and
        // closes the queue itself, so nothing can be admitted after
        // close — workers then drain and exit.
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// How often the non-blocking acceptor re-checks the shutdown flag
/// when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (ECONNABORTED etc.): back off
            // briefly rather than spinning or dying.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Closing here — after the last accept — guarantees no admitted
    // job can race the close, so the workers' drain sees everything.
    shared.queue.close();
}

fn admit(stream: TcpStream, shared: &Shared) {
    metrics::histogram(keys::QUEUE_DEPTH).record(shared.queue.len() as u64);
    let job = Job { stream, accepted_at: Instant::now() };
    match shared.queue.try_push(job) {
        Ok(()) => {
            metrics::counter(keys::REQUESTS_ACCEPTED).incr();
        }
        Err((job, _full_or_closed)) => {
            metrics::counter(keys::ADMISSION_REJECTED).incr();
            shed(job.stream, shared);
        }
    }
}

/// Answers a connection we refuse to queue: `503` + `Retry-After`,
/// written inline on the acceptor thread with a short timeout so a
/// slow client cannot stall admission.
fn shed(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let response = Response {
        status: 503,
        content_type: "application/json",
        retry_after_s: Some(shared.config.retry_after_s),
        body: api::error_body("overloaded", "admission queue full; retry later"),
    };
    count_status(response.status);
    let _ = http::write_response(&mut stream, &response);
    drain_unread(&mut stream);
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        handle(job, shared);
    }
}

fn handle(job: Job, shared: &Shared) {
    metrics::counter(keys::REQUESTS_STARTED).incr();
    let Job { mut stream, accepted_at } = job;

    let deadline = shared.config.deadline;
    let Some(remaining) = deadline.checked_sub(accepted_at.elapsed()) else {
        metrics::counter(keys::DEADLINE_EXPIRED).incr();
        let response = Response {
            status: 503,
            content_type: "application/json",
            retry_after_s: Some(shared.config.retry_after_s),
            body: api::error_body("deadline_expired", "request waited in queue past its deadline"),
        };
        finish(&mut stream, &response, accepted_at);
        return;
    };

    // A slow or stalled peer gets the request's remaining budget, not
    // a worker forever.
    let io_budget = remaining.max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(io_budget));
    let _ = stream.set_write_timeout(Some(io_budget));

    let request = match http::read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            let response = Response {
                status: e.status(),
                content_type: "application/json",
                retry_after_s: None,
                body: api::error_body("bad_request", &e.reason()),
            };
            finish(&mut stream, &response, accepted_at);
            return;
        }
    };

    let response = route(&request, remaining, shared);
    finish(&mut stream, &response, accepted_at);
}

fn route(request: &Request, remaining: Duration, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            metrics::counter(keys::REQ_HEALTHZ).incr();
            Response::text("ok\n".into())
        }
        ("GET", "/metrics") => {
            metrics::counter(keys::REQ_METRICS).incr();
            Response::text(metrics::global().snapshot().render())
        }
        ("GET", "/version") => Response::json(format!(
            r#"{{"schema":"hmcs-serve/1","crate":"hmcs-serve","version":"{}"}}"#,
            env!("CARGO_PKG_VERSION")
        )),
        ("POST", "/v1/evaluate") => {
            metrics::counter(keys::REQ_EVALUATE).incr();
            coalesced(shared, remaining, request, |body| {
                let config = api::parse_evaluate(body)?;
                Ok((api::evaluate_key(&config), move || api::evaluate_response(&config)))
            })
        }
        ("POST", "/v1/sweep") => {
            metrics::counter(keys::REQ_SWEEP).incr();
            coalesced(shared, remaining, request, |body| {
                let (config, spec) = api::parse_sweep(body)?;
                Ok((api::sweep_key(&config, &spec), move || api::sweep_response(&config, &spec)))
            })
        }
        (_, "/healthz" | "/metrics" | "/version" | "/v1/evaluate" | "/v1/sweep") => {
            metrics::counter(keys::REQ_OTHER).incr();
            Response {
                status: 405,
                content_type: "application/json",
                retry_after_s: None,
                body: api::error_body("method_not_allowed", "see the endpoint table in the docs"),
            }
        }
        _ => {
            metrics::counter(keys::REQ_OTHER).incr();
            Response {
                status: 404,
                content_type: "application/json",
                retry_after_s: None,
                body: api::error_body("not_found", "unknown endpoint"),
            }
        }
    }
}

/// Parses a `/v1/*` body, then runs the computation through the
/// coalescer: identical concurrent requests share one evaluation and
/// all receive byte-identical responses.
fn coalesced<F, C>(shared: &Shared, remaining: Duration, request: &Request, prepare: F) -> Response
where
    F: FnOnce(&str) -> Result<(String, C), api::ApiError>,
    C: FnOnce() -> Result<String, api::ApiError>,
{
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(api::ApiError {
            status: 400,
            code: "invalid_json",
            message: "request body is not UTF-8".into(),
        });
    };
    let (key, compute) = match prepare(body) {
        Ok(prepared) => prepared,
        Err(e) => return error_response(e),
    };
    let (value, outcome) = shared.coalescer.run(&key, remaining, || {
        // Fault injection: the sleep sits *inside* the coalescing slot
        // so it widens the in-flight window exactly like a genuinely
        // slow computation would.
        if !shared.config.handler_latency.is_zero() {
            std::thread::sleep(shared.config.handler_latency);
        }
        match compute() {
            Ok(body) => Response::json(body),
            Err(e) => error_response(e),
        }
    });
    match (value, outcome) {
        (Some(response), _) => response,
        (None, _) => Response {
            status: 503,
            content_type: "application/json",
            retry_after_s: Some(shared.config.retry_after_s),
            body: api::error_body(
                "coalesce_timeout",
                "an identical in-flight request did not finish within the deadline",
            ),
        },
    }
}

fn error_response(e: api::ApiError) -> Response {
    Response {
        status: e.status,
        content_type: "application/json",
        retry_after_s: None,
        body: e.body(),
    }
}

fn finish(stream: &mut TcpStream, response: &Response, accepted_at: Instant) {
    count_status(response.status);
    // The peer may already be gone (shed test clients, health probes
    // that hang up early); nothing useful to do with the error.
    let _ = http::write_response(stream, response);
    drain_unread(stream);
    metrics::histogram(keys::REQUEST_US).record(accepted_at.elapsed().as_micros() as u64);
}

/// Discards any request bytes still unread (error paths answer before
/// consuming the body). Closing a socket with pending input makes the
/// kernel send `RST`, which can destroy the response before the client
/// reads it; draining first turns the close into an orderly `FIN`.
fn drain_unread(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    // Bounded: at most ~256 KiB or 250 ms per connection.
    for _ in 0..256 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

fn count_status(status: u16) {
    let key = match status / 100 {
        2 => keys::STATUS_2XX,
        4 => keys::STATUS_4XX,
        _ => keys::STATUS_5XX,
    };
    metrics::counter(key).incr();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn test_config() -> ServerConfig {
        ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() }
    }

    #[test]
    fn healthz_and_version_respond() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = request(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with("ok\n"));
        let reply = request(addr, "GET /version HTTP/1.1\r\n\r\n");
        assert!(reply.contains("hmcs-serve"));
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_get_structured_errors() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        assert!(reply.contains(r#""code":"not_found""#));
        let reply = request(addr, "DELETE /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn evaluate_round_trips_over_the_socket() {
        let server = Server::start(test_config()).unwrap();
        let body = r#"{"clusters":16}"#;
        let reply = request(
            server.local_addr(),
            &format!("POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains(r#""schema":"hmcs-serve-evaluate/1""#));
        assert!(reply.contains(r#""mean":"#));
        server.shutdown();
    }

    #[test]
    fn malformed_bodies_get_escaped_400s() {
        let server = Server::start(test_config()).unwrap();
        let body = "{\"ctrl\u{1}\": \"\u{2}\"";
        let reply = request(
            server.local_addr(),
            &format!("POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let json_body = reply.split("\r\n\r\n").nth(1).unwrap();
        hmcs_core::json::parse_json(json_body).expect("error body is valid JSON");
        server.shutdown();
    }
}
