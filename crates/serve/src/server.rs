//! The serving loop: acceptor thread, bounded queue, worker pool.
//!
//! ## Lifecycle
//!
//! [`Server::start`] binds the listener, spawns one acceptor thread
//! and a pool of workers, and returns immediately. The acceptor admits
//! *connections* into a [`queue::Bounded`]; when the queue is full it
//! answers `503` + `Retry-After` inline without occupying a worker
//! (load shedding). Workers pop connections and serve them with
//! HTTP/1.1 keep-alive: a buffered [`http::RequestReader`] carries
//! pipelined bytes over between requests, responses to already
//! buffered requests are corked into one socket write, and the
//! connection closes on `Connection: close`, idle timeout
//! ([`ServerConfig::idle_timeout`]), the per-connection request cap
//! ([`ServerConfig::max_conn_requests`]), or shutdown.
//!
//! ## Deadlines
//!
//! [`ServerConfig::deadline`] bounds each request: for a connection's
//! first request it runs from accept (queue wait counts — a job that
//! sat longer is answered `503` without computing), for subsequent
//! requests from the moment their first byte is awaited. The remaining
//! budget also bounds socket reads and the wait of a coalescing
//! follower, so a slow peer cannot pin a worker indefinitely.
//!
//! ## Micro-batching
//!
//! With a non-zero [`ServerConfig::batch_window`], *distinct* model
//! evaluations arriving within the window are gathered by a
//! [`microbatch::Batcher`] and solved in **one**
//! [`hmcs_core::kernel::evaluate_batch`] call per window: a
//! `/v1/evaluate` request contributes its single config, a `/v1/sweep`
//! request contributes one config per sweep point, and every gathered
//! lane advances in lockstep through the same SoA kernel solve on the
//! server's own worker count. Each request then renders its own slice
//! of the lane results (identical concurrent requests are still
//! deduplicated upstream by the [`Coalescer`], so batches contain
//! distinct points only). Kernel lanes are bit-identical to the scalar
//! path and invariant under batch composition, so batching never
//! changes response bytes — only scheduling.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the acceptor first, then closes the
//! queue. Workers drain every connection that was already admitted
//! before exiting — an accepted request is never dropped mid-flight;
//! kept-alive connections finish their current request and close.

use crate::coalesce::Coalescer;
use crate::http::{self, Request, Response};
use crate::microbatch::Batcher;
use crate::queue::Bounded;
use crate::{api, keys};
use hmcs_core::batch::BatchOptions;
use hmcs_core::config::SystemConfig;
use hmcs_core::kernel;
use hmcs_core::metrics;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 asks the OS for a free port (tests).
    pub addr: String,
    /// Worker threads; 0 defers to [`BatchOptions`]'s policy
    /// (`HMCS_POOL_WORKERS` or available parallelism).
    pub workers: usize,
    /// Bounded queue capacity — the admission budget beyond the
    /// connections currently being served.
    pub queue_capacity: usize,
    /// Per-request budget; also bounds socket I/O and coalescing
    /// waits. For a connection's first request it includes queue wait.
    pub deadline: Duration,
    /// Value of the `Retry-After` header on shed responses.
    pub retry_after_s: u64,
    /// Hard cap on request bodies.
    pub max_body_bytes: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`connection: close` on the final response). Bounds how long a
    /// single client can monopolise a worker.
    pub max_conn_requests: u64,
    /// Gather window for cross-request micro-batching of distinct
    /// evaluate points; zero disables batching. Non-zero values trade
    /// up to one window of added latency for one `par_map` call per
    /// batch instead of per request.
    pub batch_window: Duration,
    /// Artificial pre-compute latency on `/v1/*` requests. Fault
    /// injection for tests and soak runs (deterministically provokes
    /// queue buildup, shedding and deadline expiry); zero in service.
    pub handler_latency: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8377".into(),
            workers: 0,
            queue_capacity: 64,
            deadline: Duration::from_secs(10),
            retry_after_s: 1,
            max_body_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(5),
            max_conn_requests: 100_000,
            batch_window: Duration::ZERO,
            handler_latency: Duration::ZERO,
        }
    }
}

/// One admitted connection, timestamped for deadline accounting.
struct Job {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Shared state between the acceptor and the workers.
struct Shared {
    config: ServerConfig,
    queue: Bounded<Job>,
    coalescer: Coalescer<Response>,
    batcher: Option<Batcher<SystemConfig, api::PointResult>>,
    shutdown: AtomicBool,
}

/// A running daemon. Dropping the handle without calling
/// [`Server::shutdown`] leaves the threads serving (detached).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the serving threads.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let worker_count = if config.workers == 0 {
            BatchOptions::default().resolved_workers()
        } else {
            config.workers
        };
        // The window's one kernel solve runs on the *configured*
        // worker count (a zero `config.workers` already resolved to
        // the pool policy above), not a separately-resolved default.
        let batcher = (!config.batch_window.is_zero()).then(|| {
            Batcher::new(config.batch_window, move |configs: &[SystemConfig]| {
                kernel::evaluate_batch(configs, worker_count)
            })
        });
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            coalescer: Coalescer::new(),
            batcher,
            shutdown: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hmcs-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hmcs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server { shared, local_addr, acceptor, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently waiting in the admission queue
    /// (tests/metrics).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops accepting, drains every admitted connection, joins all
    /// threads. Blocks until the drain completes.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor observes the flag within one poll interval and
        // closes the queue itself, so nothing can be admitted after
        // close — workers then drain and exit.
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// How often the non-blocking acceptor re-checks the shutdown flag
/// when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Socket read-timeout slice. Blocking reads wake at this cadence so
/// idle waits can observe shutdown and idle-timeout without a
/// per-request `setsockopt`.
const IO_SLICE: Duration = Duration::from_millis(100);

/// Corked responses are flushed once the buffer crosses this size even
/// if further pipelined requests are waiting.
const FLUSH_BYTES: usize = 64 * 1024;

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (ECONNABORTED etc.): back off
            // briefly rather than spinning or dying.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Closing here — after the last accept — guarantees no admitted
    // job can race the close, so the workers' drain sees everything.
    shared.queue.close();
}

fn admit(stream: TcpStream, shared: &Shared) {
    metrics::histogram(keys::QUEUE_DEPTH).record(shared.queue.len() as u64);
    let job = Job { stream, accepted_at: Instant::now() };
    match shared.queue.try_push(job) {
        Ok(()) => {
            metrics::counter(keys::REQUESTS_ACCEPTED).incr();
        }
        Err((job, _full_or_closed)) => {
            metrics::counter(keys::ADMISSION_REJECTED).incr();
            shed(job.stream, shared);
        }
    }
}

/// Answers a connection we refuse to queue: `503` + `Retry-After`,
/// written inline on the acceptor thread with a short timeout so a
/// slow client cannot stall admission.
fn shed(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let response = Response {
        status: 503,
        content_type: "application/json",
        retry_after_s: Some(shared.config.retry_after_s),
        body: api::error_body("overloaded", "admission queue full; retry later"),
    };
    count_status(response.status);
    let _ = http::write_response(&mut stream, &response, true);
    drain_unread(&mut stream);
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        handle(job, shared);
    }
}

/// What [`wait_for_data`] observed on an idle connection.
enum Wait {
    /// Bytes are readable; go parse a request.
    Data,
    /// The peer closed (or errored) — end the connection quietly.
    Closed,
    /// The wait budget lapsed with no bytes.
    TimedOut,
    /// Shutdown began while the connection was idle.
    Shutdown,
}

/// Waits for the first byte of the next request without consuming it,
/// polling at [`IO_SLICE`] cadence so shutdown is observed promptly.
/// `abort_on_shutdown` is false for a connection's *first* request
/// (it was admitted before shutdown, so its request must be served).
fn wait_for_data(
    stream: &TcpStream,
    shared: &Shared,
    budget: Duration,
    abort_on_shutdown: bool,
) -> Wait {
    let deadline = Instant::now() + budget;
    let mut probe = [0u8; 1];
    loop {
        match stream.peek(&mut probe) {
            Ok(0) => return Wait::Closed,
            Ok(_) => return Wait::Data,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if abort_on_shutdown && shared.shutdown.load(Ordering::SeqCst) {
                    return Wait::Shutdown;
                }
                if Instant::now() >= deadline {
                    return Wait::TimedOut;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Wait::Closed,
        }
    }
}

/// Serves one admitted connection until it closes.
fn handle(job: Job, shared: &Shared) {
    let Job { mut stream, accepted_at } = job;
    let config = &shared.config;

    // A job that sat in queue past its deadline is answered `503`
    // without reading (its result would be stale anyway — the client
    // has likely timed out).
    if accepted_at.elapsed() >= config.deadline {
        metrics::counter(keys::DEADLINE_EXPIRED).incr();
        let response = Response {
            status: 503,
            content_type: "application/json",
            retry_after_s: Some(config.retry_after_s),
            body: api::error_body("deadline_expired", "request waited in queue past its deadline"),
        };
        count_status(response.status);
        let _ = http::write_response(&mut stream, &response, true);
        drain_unread(&mut stream);
        return;
    }

    // One-time socket setup. Reads wake at IO_SLICE cadence (the
    // reader and idle waits retry against their own deadlines), so no
    // per-request setsockopt is needed on the hot path.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IO_SLICE));
    let _ = stream.set_write_timeout(Some(config.deadline.max(Duration::from_millis(1))));

    let mut reader = http::RequestReader::new();
    let mut out: Vec<u8> = Vec::with_capacity(2048);
    let mut served: u64 = 0;
    // First request: the clock started at accept (queue wait counts).
    let mut request_start = accepted_at;

    loop {
        if !reader.has_buffered() {
            let (budget, first) = if served == 0 {
                (config.deadline.saturating_sub(accepted_at.elapsed()), true)
            } else {
                (config.idle_timeout, false)
            };
            match wait_for_data(&stream, shared, budget, !first) {
                Wait::Data => {}
                Wait::Closed | Wait::Shutdown => break,
                Wait::TimedOut => {
                    if first {
                        let response = Response {
                            status: 408,
                            content_type: "application/json",
                            retry_after_s: None,
                            body: api::error_body("timeout", "no request received in time"),
                        };
                        count_status(response.status);
                        let _ = http::write_response(&mut stream, &response, true);
                    } else {
                        metrics::counter(keys::CONN_IDLE_CLOSED).incr();
                    }
                    break;
                }
            }
            if !first {
                request_start = Instant::now();
            }
        }

        let deadline = request_start + config.deadline;
        let request = match reader.read_request(&mut stream, config.max_body_bytes, deadline) {
            Ok(Some(request)) => request,
            Ok(None) => break, // clean close between requests
            Err(e) => {
                // Protocol errors poison the framing; answer and close.
                let response = Response {
                    status: e.status(),
                    content_type: "application/json",
                    retry_after_s: None,
                    body: api::error_body("bad_request", &e.reason()),
                };
                count_status(response.status);
                out.clear();
                http::serialize_response(&mut out, &response, true);
                let _ = io::Write::write_all(&mut stream, &out);
                drain_unread(&mut stream);
                return;
            }
        };
        metrics::counter(keys::REQUESTS_STARTED).incr();

        let remaining =
            deadline.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
        let response = route(&request, remaining, shared);
        served += 1;

        let close = request.wants_close
            || served >= config.max_conn_requests
            || shared.shutdown.load(Ordering::SeqCst);
        count_status(response.status);
        http::serialize_response(&mut out, &response, close);
        metrics::histogram(keys::REQUEST_US).record(request_start.elapsed().as_micros() as u64);

        if close {
            if served >= config.max_conn_requests {
                metrics::counter(keys::CONN_CAP_CLOSED).incr();
            }
            let _ = io::Write::write_all(&mut stream, &out);
            drain_unread(&mut stream);
            return;
        }
        // Cork: while further pipelined requests are already buffered,
        // keep accumulating responses and pay one write for the batch.
        if !reader.has_buffered() || out.len() >= FLUSH_BYTES {
            if io::Write::write_all(&mut stream, &out).is_err() {
                return;
            }
            out.clear();
        }
        request_start = Instant::now();
    }

    if !out.is_empty() {
        let _ = io::Write::write_all(&mut stream, &out);
    }
}

fn route(request: &Request, remaining: Duration, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            metrics::counter(keys::REQ_HEALTHZ).incr();
            Response::text("ok\n".into())
        }
        ("GET", "/metrics") => {
            metrics::counter(keys::REQ_METRICS).incr();
            Response::text(metrics::global().snapshot().render())
        }
        ("GET", "/version") => Response::json(format!(
            r#"{{"schema":"hmcs-serve/1","crate":"hmcs-serve","version":"{}"}}"#,
            env!("CARGO_PKG_VERSION")
        )),
        ("POST", "/v1/evaluate") => {
            metrics::counter(keys::REQ_EVALUATE).incr();
            coalesced(shared, remaining, request, |body| {
                let (config, strict) = api::parse_evaluate(body)?;
                // Strict requests fail fast here — before the
                // coalescer or batcher ever sees the workload.
                if strict {
                    api::check_unsaturated(&config)?;
                }
                let key = api::evaluate_key(&config);
                Ok((key, move || match &shared.batcher {
                    Some(batcher) => match batcher.submit(config, remaining) {
                        Some(result) => response_of(api::evaluate_response_from(&config, result)),
                        None => wait_exhausted(shared, "batch_timeout"),
                    },
                    None => response_of(api::evaluate_response(&config)),
                }))
            })
        }
        ("POST", "/v1/sweep") => {
            metrics::counter(keys::REQ_SWEEP).incr();
            coalesced(shared, remaining, request, |body| {
                let (config, spec, strict) = api::parse_sweep(body)?;
                if strict {
                    api::check_sweep_unsaturated(&config, &spec)?;
                }
                let key = api::sweep_key(&config, &spec);
                Ok((key, move || match &shared.batcher {
                    // A sweep contributes one config per point to the
                    // shared window, then reassembles its own slice.
                    Some(batcher) => match api::sweep_configs(&config, &spec) {
                        Ok(configs) => match batcher.submit_many(configs, remaining) {
                            Some(results) => {
                                response_of(api::sweep_response_from(&config, &spec, results))
                            }
                            None => wait_exhausted(shared, "batch_timeout"),
                        },
                        Err(e) => error_response(e),
                    },
                    None => response_of(api::sweep_response(&config, &spec)),
                }))
            })
        }
        ("POST", "/v1/optimize") => {
            metrics::counter(keys::REQ_OPTIMIZE).incr();
            coalesced(shared, remaining, request, |body| {
                let request = api::parse_optimize(body)?;
                let key = api::optimize_key(&request);
                Ok((key, move || response_of(api::optimize_response(&request))))
            })
        }
        (
            _,
            "/healthz" | "/metrics" | "/version" | "/v1/evaluate" | "/v1/sweep" | "/v1/optimize",
        ) => {
            metrics::counter(keys::REQ_OTHER).incr();
            Response {
                status: 405,
                content_type: "application/json",
                retry_after_s: None,
                body: api::error_body("method_not_allowed", "see the endpoint table in the docs"),
            }
        }
        _ => {
            metrics::counter(keys::REQ_OTHER).incr();
            Response {
                status: 404,
                content_type: "application/json",
                retry_after_s: None,
                body: api::error_body("not_found", "unknown endpoint"),
            }
        }
    }
}

/// Parses a `/v1/*` body, then runs the computation through the
/// coalescer: identical concurrent requests share one evaluation and
/// all receive byte-identical responses.
fn coalesced<F, C>(shared: &Shared, remaining: Duration, request: &Request, prepare: F) -> Response
where
    F: FnOnce(&str) -> Result<(String, C), api::ApiError>,
    C: FnOnce() -> Response,
{
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(api::ApiError {
            status: 400,
            code: "invalid_json",
            message: "request body is not UTF-8".into(),
            data: Vec::new(),
        });
    };
    let (key, compute) = match prepare(body) {
        Ok(prepared) => prepared,
        Err(e) => return error_response(e),
    };
    let (value, outcome) = shared.coalescer.run(&key, remaining, || {
        // Fault injection: the sleep sits *inside* the coalescing slot
        // so it widens the in-flight window exactly like a genuinely
        // slow computation would.
        if !shared.config.handler_latency.is_zero() {
            std::thread::sleep(shared.config.handler_latency);
        }
        compute()
    });
    match (value, outcome) {
        (Some(response), _) => response,
        (None, _) => wait_exhausted(shared, "coalesce_timeout"),
    }
}

/// The `503` a request receives when the computation it was waiting on
/// (a coalescing leader or a batch) did not deliver within its budget.
fn wait_exhausted(shared: &Shared, code: &'static str) -> Response {
    Response {
        status: 503,
        content_type: "application/json",
        retry_after_s: Some(shared.config.retry_after_s),
        body: api::error_body(code, "an in-flight computation did not finish within the deadline"),
    }
}

fn response_of(result: Result<String, api::ApiError>) -> Response {
    match result {
        Ok(body) => Response::json(body),
        Err(e) => error_response(e),
    }
}

fn error_response(e: api::ApiError) -> Response {
    Response {
        status: e.status,
        content_type: "application/json",
        retry_after_s: None,
        body: e.body(),
    }
}

/// Discards any request bytes still unread (error paths answer before
/// consuming the body). Closing a socket with pending input makes the
/// kernel send `RST`, which can destroy the response before the client
/// reads it; draining first turns the close into an orderly `FIN`.
fn drain_unread(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    // Bounded: at most ~256 KiB or 250 ms per connection.
    for _ in 0..256 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

fn count_status(status: u16) {
    let key = match status / 100 {
        2 => keys::STATUS_2XX,
        4 => keys::STATUS_4XX,
        _ => keys::STATUS_5XX,
    };
    metrics::counter(key).incr();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};

    /// Reads exactly one response (status line + headers +
    /// `content-length` body) so it works on kept-alive connections.
    fn read_one_response(reader: &mut BufReader<TcpStream>) -> String {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                panic!("connection closed mid-response: {head:?}");
            }
            head.push_str(&line);
            if line == "\r\n" {
                break;
            }
        }
        let content_length: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
            .and_then(|v| v.trim().parse().ok())
            .expect("content-length header");
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        head + std::str::from_utf8(&body).unwrap()
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        (&stream).write_all(raw.as_bytes()).unwrap();
        read_one_response(&mut reader)
    }

    fn test_config() -> ServerConfig {
        ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() }
    }

    #[test]
    fn healthz_and_version_respond() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = request(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with("ok\n"));
        let reply = request(addr, "GET /version HTTP/1.1\r\n\r\n");
        assert!(reply.contains("hmcs-serve"));
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_get_structured_errors() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        assert!(reply.contains(r#""code":"not_found""#));
        let reply = request(addr, "DELETE /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn evaluate_round_trips_over_the_socket() {
        let server = Server::start(test_config()).unwrap();
        let body = r#"{"clusters":16}"#;
        let reply = request(
            server.local_addr(),
            &format!("POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains(r#""schema":"hmcs-serve-evaluate/1""#));
        assert!(reply.contains(r#""mean":"#));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let server = Server::start(test_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for _ in 0..3 {
            (&stream).write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let reply = read_one_response(&mut reader);
            assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
            assert!(reply.contains("connection: keep-alive\r\n"), "{reply}");
        }
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn malformed_bodies_get_escaped_400s() {
        let server = Server::start(test_config()).unwrap();
        let body = "{\"ctrl\u{1}\": \"\u{2}\"";
        let reply = request(
            server.local_addr(),
            &format!("POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let json_body = reply.split("\r\n\r\n").nth(1).unwrap();
        hmcs_core::json::parse_json(json_body).expect("error body is valid JSON");
        server.shutdown();
    }
}
