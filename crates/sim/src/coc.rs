//! Flow-level simulator for **Cluster-of-Clusters** systems — the
//! validation counterpart of `hmcs_core::cluster_of_clusters`, so the
//! paper's future-work generalisation gets the same
//! analysis-vs-simulation treatment as the Super-Cluster model.
//!
//! Clusters may differ in size and network technology; everything else
//! follows the flow-level semantics of [`crate::flow`]: exponential
//! think times, uniform destinations, blocked sources, one FCFS server
//! per network tier with the topology-model mean service time.

use crate::result::{CenterObservation, LatencyQuantiles, SimResult};
use hmcs_core::cluster_of_clusters::{tier_service_times, CocConfig, CocServiceTimes};
use hmcs_core::config::ServiceTimeModel;
use hmcs_core::error::ModelError;
use hmcs_des::engine::{Engine, Model, Scheduler};
use hmcs_des::quantile::P2Quantile;
use hmcs_des::queue::{FcfsServer, ServiceDirective};
use hmcs_des::rng::RngStream;
use hmcs_des::stats::OnlineStats;
use hmcs_des::time::SimTime;

/// Run configuration for a CoC simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CocSimConfig {
    /// The heterogeneous system (shared with the analytical model).
    pub system: CocConfig,
    /// Measured delivered messages.
    pub messages: u64,
    /// Warm-up messages discarded first.
    pub warmup_messages: u64,
    /// Master seed.
    pub seed: u64,
    /// Whether the sink keeps P² latency-quantile estimators. Same
    /// contract as [`crate::config::SimConfig::track_quantiles`]: with
    /// it off, `quantiles` is `None` and every other statistic is
    /// bit-identical.
    pub track_quantiles: bool,
    /// Whether the service centers keep per-event statistics. Same
    /// contract as [`crate::config::SimConfig::track_center_stats`].
    pub track_center_stats: bool,
}

impl CocSimConfig {
    /// Creates a run configuration with paper-style defaults.
    pub fn new(system: CocConfig) -> Self {
        CocSimConfig {
            system,
            messages: 10_000,
            warmup_messages: 0,
            seed: 0x5EED,
            track_quantiles: true,
            track_center_stats: true,
        }
    }

    /// Sets the measured-message budget.
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Sets the warm-up budget.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_messages = warmup;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggles the sink's P² latency-quantile estimators.
    pub fn with_quantiles(mut self, track_quantiles: bool) -> Self {
        self.track_quantiles = track_quantiles;
        self
    }

    /// Toggles the service centers' per-event statistics.
    pub fn with_center_stats(mut self, track_center_stats: bool) -> Self {
        self.track_center_stats = track_center_stats;
        self
    }
}

type MsgId = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Icn1,
    Ecn1Forward,
    Icn2,
    Ecn1Feedback,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    src: usize,
    dst: usize,
    created_us: f64,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Generate { node: usize },
    Icn1Done { cluster: usize },
    Ecn1Done { cluster: usize },
    Icn2Done,
}

struct CocModel {
    cfg: CocSimConfig,
    n: usize,
    cluster_of_node: Vec<usize>,
    means: CocServiceTimes,
    think_rng: RngStream,
    dest_rng: RngStream,
    svc_rng: RngStream,
    icn1: Vec<FcfsServer<MsgId>>,
    ecn1: Vec<FcfsServer<MsgId>>,
    icn2: FcfsServer<MsgId>,
    msgs: Vec<Msg>,
    free_ids: Vec<MsgId>,
    delivered: u64,
    latency: OnlineStats,
    internal_latency: OnlineStats,
    external_latency: OnlineStats,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

/// Builds one service center honouring the config's statistics flag.
fn coc_center(cfg: &CocSimConfig) -> FcfsServer<MsgId> {
    let mut server = FcfsServer::new();
    server.set_instrumented(cfg.track_center_stats);
    server
}

impl CocModel {
    fn new(cfg: CocSimConfig) -> Result<Self, ModelError> {
        cfg.system.validate()?;
        let means = tier_service_times(&cfg.system)?;
        let clusters = cfg.system.clusters.len();
        let mut cluster_of_node = Vec::with_capacity(cfg.system.total_nodes());
        for (i, c) in cfg.system.clusters.iter().enumerate() {
            cluster_of_node.extend(std::iter::repeat_n(i, c.nodes));
        }
        Ok(CocModel {
            n: cluster_of_node.len(),
            cluster_of_node,
            means,
            think_rng: RngStream::new(cfg.seed, 21),
            dest_rng: RngStream::new(cfg.seed, 22),
            svc_rng: RngStream::new(cfg.seed, 23),
            icn1: (0..clusters).map(|_| coc_center(&cfg)).collect(),
            ecn1: (0..clusters).map(|_| coc_center(&cfg)).collect(),
            icn2: coc_center(&cfg),
            msgs: Vec::new(),
            free_ids: Vec::new(),
            delivered: 0,
            latency: OnlineStats::new(),
            internal_latency: OnlineStats::new(),
            external_latency: OnlineStats::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            cfg,
        })
    }

    fn sample_service(&mut self, mean_us: f64) -> f64 {
        match self.cfg.system.service_model {
            ServiceTimeModel::Exponential => self.svc_rng.exponential_mean(mean_us),
            ServiceTimeModel::Deterministic => mean_us,
            ServiceTimeModel::Erlang(k) => self.svc_rng.erlang(mean_us, k),
            ServiceTimeModel::HyperExponential(scv) => self.svc_rng.hyper_exponential(mean_us, scv),
        }
    }

    fn alloc_msg(&mut self, msg: Msg) -> MsgId {
        if let Some(id) = self.free_ids.pop() {
            self.msgs[id] = msg;
            id
        } else {
            self.msgs.push(msg);
            self.msgs.len() - 1
        }
    }

    fn deliver(&mut self, now: SimTime, s: &mut Scheduler<Ev>, id: MsgId) {
        let msg = self.msgs[id];
        self.free_ids.push(id);
        let latency = now.as_us() - msg.created_us;
        self.delivered += 1;
        if self.delivered > self.cfg.warmup_messages {
            self.latency.record(latency);
            if self.cfg.track_quantiles {
                self.p50.record(latency);
                self.p95.record(latency);
                self.p99.record(latency);
            }
            if self.cfg.track_center_stats {
                if self.cluster_of_node[msg.src] == self.cluster_of_node[msg.dst] {
                    self.internal_latency.record(latency);
                } else {
                    self.external_latency.record(latency);
                }
            }
        }
        let think = self.think_rng.exponential(self.cfg.system.lambda_per_us);
        s.schedule_in(now, SimTime::from_us(think), Ev::Generate { node: msg.src });
    }

    fn measured(&self) -> u64 {
        self.latency.count()
    }
}

impl Model for CocModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, s: &mut Scheduler<Ev>) {
        match event {
            Ev::Generate { node } => {
                let dst = self.dest_rng.uniform_excluding(self.n, node);
                let src_cluster = self.cluster_of_node[node];
                let dst_cluster = self.cluster_of_node[dst];
                let external = src_cluster != dst_cluster;
                let stage = if external { Stage::Ecn1Forward } else { Stage::Icn1 };
                let id = self.alloc_msg(Msg { src: node, dst, created_us: now.as_us(), stage });
                if external {
                    if let ServiceDirective::StartService(_) =
                        self.ecn1[src_cluster].arrive(now.as_us(), id)
                    {
                        let svc = self.sample_service(self.means.ecn1_us[src_cluster]);
                        s.schedule_in(
                            now,
                            SimTime::from_us(svc),
                            Ev::Ecn1Done { cluster: src_cluster },
                        );
                    }
                } else if let ServiceDirective::StartService(_) =
                    self.icn1[src_cluster].arrive(now.as_us(), id)
                {
                    let svc = self.sample_service(self.means.icn1_us[src_cluster]);
                    s.schedule_in(
                        now,
                        SimTime::from_us(svc),
                        Ev::Icn1Done { cluster: src_cluster },
                    );
                }
            }
            Ev::Icn1Done { cluster } => {
                let (id, directive) = self.icn1[cluster].complete(now.as_us());
                self.deliver(now, s, id);
                if let ServiceDirective::StartService(_) = directive {
                    let svc = self.sample_service(self.means.icn1_us[cluster]);
                    s.schedule_in(now, SimTime::from_us(svc), Ev::Icn1Done { cluster });
                }
            }
            Ev::Ecn1Done { cluster } => {
                let (id, directive) = self.ecn1[cluster].complete(now.as_us());
                match self.msgs[id].stage {
                    Stage::Ecn1Forward => {
                        self.msgs[id].stage = Stage::Icn2;
                        if let ServiceDirective::StartService(_) = self.icn2.arrive(now.as_us(), id)
                        {
                            let svc = self.sample_service(self.means.icn2_us);
                            s.schedule_in(now, SimTime::from_us(svc), Ev::Icn2Done);
                        }
                    }
                    Stage::Ecn1Feedback => self.deliver(now, s, id),
                    other => unreachable!("message in ECN1 with stage {other:?}"),
                }
                if let ServiceDirective::StartService(_) = directive {
                    let svc = self.sample_service(self.means.ecn1_us[cluster]);
                    s.schedule_in(now, SimTime::from_us(svc), Ev::Ecn1Done { cluster });
                }
            }
            Ev::Icn2Done => {
                let (id, directive) = self.icn2.complete(now.as_us());
                self.msgs[id].stage = Stage::Ecn1Feedback;
                let dst_cluster = self.cluster_of_node[self.msgs[id].dst];
                if let ServiceDirective::StartService(_) =
                    self.ecn1[dst_cluster].arrive(now.as_us(), id)
                {
                    let svc = self.sample_service(self.means.ecn1_us[dst_cluster]);
                    s.schedule_in(
                        now,
                        SimTime::from_us(svc),
                        Ev::Ecn1Done { cluster: dst_cluster },
                    );
                }
                if let ServiceDirective::StartService(_) = directive {
                    let svc = self.sample_service(self.means.icn2_us);
                    s.schedule_in(now, SimTime::from_us(svc), Ev::Icn2Done);
                }
            }
        }
    }
}

/// The Cluster-of-Clusters flow simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CocSimulator;

impl CocSimulator {
    /// Runs one CoC simulation.
    pub fn run(cfg: &CocSimConfig) -> Result<SimResult, ModelError> {
        let mut engine = Engine::new(CocModel::new(cfg.clone())?);
        for node in 0..cfg.system.total_nodes() {
            let think = engine.model_mut().think_rng.exponential(cfg.system.lambda_per_us);
            engine.scheduler_mut().schedule_at(SimTime::from_us(think), Ev::Generate { node });
        }
        let target = cfg.messages;
        engine.run_until(None, None, |m| m.measured() >= target);
        let now = engine.now().as_us();
        let model = engine.into_model();

        let avg_center = |servers: &[FcfsServer<MsgId>]| -> CenterObservation {
            let k = servers.len() as f64;
            CenterObservation {
                mean_number_in_system: servers
                    .iter()
                    .map(|q| q.mean_number_in_system(now))
                    .sum::<f64>()
                    / k,
                utilization: servers.iter().map(|q| q.utilization(now)).sum::<f64>() / k,
                arrivals: servers.iter().map(|q| q.arrivals()).sum(),
            }
        };

        let measured = model.latency.count();
        Ok(SimResult {
            mean_latency_us: model.latency.mean(),
            latency: model.latency.clone(),
            quantiles: match (model.p50.estimate(), model.p95.estimate(), model.p99.estimate()) {
                (Some(p50_us), Some(p95_us), Some(p99_us)) => {
                    Some(LatencyQuantiles { p50_us, p95_us, p99_us })
                }
                _ => None,
            },
            internal_latency: model.internal_latency.clone(),
            external_latency: model.external_latency.clone(),
            messages: measured,
            sim_duration_us: now,
            throughput_per_us: model.delivered as f64 / now,
            effective_lambda_per_us: model.delivered as f64 / now / model.n as f64,
            per_cluster_ecn1_utilization: model.ecn1.iter().map(|q| q.utilization(now)).collect(),
            icn1: avg_center(&model.icn1),
            ecn1: avg_center(&model.ecn1),
            icn2: CenterObservation {
                mean_number_in_system: model.icn2.mean_number_in_system(now),
                utilization: model.icn2.utilization(now),
                arrivals: model.icn2.arrivals(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::cluster_of_clusters::{self, ClusterSpec};
    use hmcs_core::config::{QueueAccounting, ServiceTimeModel};
    use hmcs_topology::switch::SwitchFabric;
    use hmcs_topology::technology::NetworkTechnology;
    use hmcs_topology::transmission::Architecture;

    fn coc(clusters: Vec<ClusterSpec>) -> CocConfig {
        CocConfig {
            clusters,
            icn2: NetworkTechnology::FAST_ETHERNET,
            switch: SwitchFabric::paper_default(),
            architecture: Architecture::NonBlocking,
            message_bytes: 1024,
            lambda_per_us: 2.5e-4,
            accounting: QueueAccounting::SingleQueue,
            service_model: ServiceTimeModel::Exponential,
        }
    }

    fn homogeneous(c: usize, nodes: usize) -> CocConfig {
        coc(vec![
            ClusterSpec {
                nodes,
                icn1: NetworkTechnology::GIGABIT_ETHERNET,
                ecn1: NetworkTechnology::FAST_ETHERNET,
            };
            c
        ])
    }

    #[test]
    fn runs_and_is_reproducible() {
        let cfg = CocSimConfig::new(homogeneous(4, 16)).with_messages(1_000).with_seed(5);
        let a = CocSimulator::run(&cfg).unwrap();
        let b = CocSimulator::run(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.messages, 1_000);
        assert!(a.mean_latency_us > 0.0);
    }

    #[test]
    fn homogeneous_coc_sim_matches_super_cluster_sim() {
        use crate::config::SimConfig;
        use crate::flow::FlowSimulator;
        use hmcs_core::config::SystemConfig;
        use hmcs_core::scenario::Scenario;
        // Same system expressed both ways must give statistically equal
        // latencies (different RNG streams, so compare means loosely).
        let coc_result = CocSimulator::run(
            &CocSimConfig::new(homogeneous(8, 32)).with_messages(6_000).with_seed(11),
        )
        .unwrap();
        let sc = SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap();
        let sc_result =
            FlowSimulator::run(&SimConfig::new(sc).with_messages(6_000).with_seed(12)).unwrap();
        let rel = (coc_result.mean_latency_us - sc_result.mean_latency_us).abs()
            / sc_result.mean_latency_us;
        assert!(
            rel < 0.05,
            "CoC {} vs SC {}",
            coc_result.mean_latency_us,
            sc_result.mean_latency_us
        );
    }

    #[test]
    fn coc_model_matches_coc_simulation() {
        // The headline validation for the future-work model: analysis
        // vs simulation on a genuinely heterogeneous system.
        let cfg = coc(vec![
            ClusterSpec {
                nodes: 96,
                icn1: NetworkTechnology::MYRINET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            },
            ClusterSpec {
                nodes: 64,
                icn1: NetworkTechnology::GIGABIT_ETHERNET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            },
            ClusterSpec {
                nodes: 32,
                icn1: NetworkTechnology::FAST_ETHERNET,
                ecn1: NetworkTechnology::FAST_ETHERNET,
            },
        ]);
        let analysis = cluster_of_clusters::evaluate(&cfg).unwrap();
        let sim = CocSimulator::run(
            &CocSimConfig::new(cfg).with_messages(8_000).with_warmup(2_000).with_seed(17),
        )
        .unwrap();
        let rel =
            (analysis.mean_message_latency_us - sim.mean_latency_us).abs() / sim.mean_latency_us;
        assert!(
            rel < 0.10,
            "CoC analysis {:.1} vs sim {:.1} ({:.1}%)",
            analysis.mean_message_latency_us,
            sim.mean_latency_us,
            rel * 100.0
        );
        // Effective rates agree too.
        let rel_rate =
            (analysis.lambda_eff - sim.effective_lambda_per_us).abs() / sim.effective_lambda_per_us;
        assert!(rel_rate < 0.10, "lambda_eff rel err {rel_rate}");
    }

    #[test]
    fn fast_cluster_delivers_internal_messages_faster() {
        // Internal latency in a Myrinet cluster should beat internal
        // latency in an FE cluster; the mixed sink only exposes the
        // aggregate, so compare two single-technology systems.
        let fast = coc(vec![
            ClusterSpec {
                nodes: 32,
                icn1: NetworkTechnology::MYRINET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            };
            2
        ]);
        let slow = coc(vec![
            ClusterSpec {
                nodes: 32,
                icn1: NetworkTechnology::FAST_ETHERNET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            };
            2
        ]);
        let f =
            CocSimulator::run(&CocSimConfig::new(fast).with_messages(3_000).with_seed(3)).unwrap();
        let s =
            CocSimulator::run(&CocSimConfig::new(slow).with_messages(3_000).with_seed(3)).unwrap();
        assert!(f.internal_latency.mean() < s.internal_latency.mean());
    }
}
