//! Simulation run configuration.

use hmcs_core::config::SystemConfig;
use hmcs_core::error::ModelError;
use hmcs_core::routing::TrafficPattern;
use hmcs_core::scenario::PAPER_SIM_MESSAGES;

/// Configuration of one simulation run: the system under test plus the
/// experiment-control knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// The system being simulated (shared with the analytical model).
    pub system: SystemConfig,
    /// Number of *measured* delivered messages (the paper gathers
    /// statistics over 10,000).
    pub messages: u64,
    /// Delivered messages discarded before measurement starts (warm-up
    /// deletion; the paper does not mention one — default 0 keeps
    /// fidelity, experiments may override).
    pub warmup_messages: u64,
    /// Master RNG seed; every run with the same seed reproduces exactly.
    pub seed: u64,
    /// Whether sources block until their message is delivered
    /// (assumption 4). Disabling yields an open Jackson network, useful
    /// for validating against the unthrottled analytical solution.
    pub blocked_sources: bool,
    /// Destination-selection pattern (assumption 3 by default).
    pub pattern: TrafficPattern,
    /// Whether the sink maintains streaming P² latency-quantile
    /// estimators (p50/p95/p99). On by default; consumers that only
    /// read means (the figure pipelines) can switch the three
    /// per-delivery marker updates off. The flag never changes any
    /// other statistic — with it off, [`crate::result::SimResult::quantiles`]
    /// is `None` and everything else is bit-identical.
    pub track_quantiles: bool,
    /// Whether the run keeps diagnostic statistics beyond the overall
    /// latency/throughput: per-center waiting times and time-weighted
    /// queue length / busy area, plus the internal-vs-external latency
    /// split. On by default; consumers that only read the overall
    /// latency and throughput (the figure pipelines) can switch them
    /// off to drop the per-event time-weighted updates from the hot
    /// path. Queueing behaviour and every overall statistic are
    /// bit-identical either way — with the flag off, the per-center
    /// observations, utilizations and per-class latencies in
    /// [`crate::result::SimResult`] read empty/zero.
    pub track_center_stats: bool,
}

impl SimConfig {
    /// Creates a run configuration with the paper's defaults: 10,000
    /// measured messages, no warm-up, blocked sources, uniform traffic,
    /// seed 0x5EED.
    pub fn new(system: SystemConfig) -> Self {
        SimConfig {
            system,
            messages: PAPER_SIM_MESSAGES,
            warmup_messages: 0,
            seed: 0x5EED,
            blocked_sources: true,
            pattern: TrafficPattern::Uniform,
            track_quantiles: true,
            track_center_stats: true,
        }
    }

    /// Sets the measured-message budget.
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Sets the warm-up deletion budget.
    pub fn with_warmup(mut self, warmup_messages: u64) -> Self {
        self.warmup_messages = warmup_messages;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggles assumption 4 (blocked sources).
    pub fn with_blocked_sources(mut self, blocked: bool) -> Self {
        self.blocked_sources = blocked;
        self
    }

    /// Sets the traffic pattern.
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Toggles the sink's P² latency-quantile estimators.
    pub fn with_quantiles(mut self, track_quantiles: bool) -> Self {
        self.track_quantiles = track_quantiles;
        self
    }

    /// Toggles the service centers' per-event statistics.
    pub fn with_center_stats(mut self, track_center_stats: bool) -> Self {
        self.track_center_stats = track_center_stats;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.system.validate()?;
        self.pattern.validate()?;
        if self.messages == 0 {
            return Err(ModelError::InvalidConfig {
                name: "messages",
                reason: "need at least one measured message",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn system() -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap()
    }

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SimConfig::new(system());
        assert_eq!(cfg.messages, 10_000);
        assert_eq!(cfg.warmup_messages, 0);
        assert!(cfg.blocked_sources);
        assert_eq!(cfg.pattern, TrafficPattern::Uniform);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let cfg = SimConfig::new(system())
            .with_messages(500)
            .with_warmup(100)
            .with_seed(9)
            .with_blocked_sources(false)
            .with_pattern(TrafficPattern::Localized { locality: 0.5 });
        assert_eq!(cfg.messages, 500);
        assert_eq!(cfg.warmup_messages, 100);
        assert_eq!(cfg.seed, 9);
        assert!(!cfg.blocked_sources);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_runs() {
        assert!(SimConfig::new(system()).with_messages(0).validate().is_err());
        assert!(SimConfig::new(system())
            .with_pattern(TrafficPattern::Localized { locality: 2.0 })
            .validate()
            .is_err());
    }
}
