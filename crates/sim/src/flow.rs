//! The flow-level simulator — the direct counterpart of the paper's
//! validation simulator (§6).
//!
//! Implements exactly the stochastic system the analytical model
//! approximates:
//!
//! * each processor generates messages with exponential inter-arrival
//!   times of mean `1/λ` (assumption 1) and a uniformly random
//!   destination among all other nodes (assumption 3);
//! * a source blocks while its message is in flight (assumption 4) —
//!   disable with [`crate::config::SimConfig::with_blocked_sources`] to
//!   obtain the open network;
//! * an internal message queues once at its cluster's ICN1; an external
//!   message queues at the source ECN1, then ICN2, then the destination
//!   ECN1 (Figure 2's forward + feedback passes);
//! * every network tier is a single FCFS server whose service times are
//!   drawn from the configured distribution with the topology-model mean
//!   (eq. 11 / eq. 21) — exponential by default (§5.2);
//! * each message is time-stamped at generation and its latency recorded
//!   at delivery by the sink.
//!
//! The simulator therefore differs from the *analysis* only in the ways
//! the analysis approximates reality: Poisson-arrival assumptions at
//! interior centres and the eq. 6/7 throttling model.

use crate::config::SimConfig;
use crate::metrics_keys;
use crate::result::{CenterObservation, SimResult};
use hmcs_core::config::ServiceTimeModel;
use hmcs_core::error::ModelError;
use hmcs_core::metrics;
use hmcs_core::routing::TrafficPattern;
use hmcs_core::service::ServiceTimes;
use hmcs_des::engine::{Engine, Model, Scheduler};
use hmcs_des::quantile::P2Quantile;
use hmcs_des::queue::{FcfsServer, ServiceDirective};
use hmcs_des::rng::{RngStream, UniformInt};
use hmcs_des::stats::OnlineStats;
use hmcs_des::time::SimTime;

/// Message identifier (index into the in-flight table).
type MsgId = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Icn1,
    Ecn1Forward,
    Icn2,
    Ecn1Feedback,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    src: usize,
    dst: usize,
    created_us: f64,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A processor attempts to generate a message.
    Generate { node: usize },
    /// The ICN1 of `cluster` finishes its current service.
    Icn1Done { cluster: usize },
    /// The ECN1 of `cluster` finishes its current service.
    Ecn1Done { cluster: usize },
    /// The global ICN2 finishes its current service.
    Icn2Done,
}

#[derive(Debug)]
struct FlowModel {
    cfg: SimConfig,
    n0: usize,
    n: usize,
    means: ServiceTimes,
    think_rng: RngStream,
    dest_rng: RngStream,
    svc_rng: RngStream,
    /// Precomputed sampler over the `n - 1` non-source destinations.
    dest_any: UniformInt,
    /// Precomputed sampler over the `n0 - 1` non-source cluster-local
    /// destinations (`None` for single-node clusters).
    dest_intra: Option<UniformInt>,
    icn1: Vec<FcfsServer<MsgId>>,
    ecn1: Vec<FcfsServer<MsgId>>,
    icn2: FcfsServer<MsgId>,
    msgs: Vec<Msg>,
    free_ids: Vec<MsgId>,
    delivered: u64,
    latency: OnlineStats,
    internal_latency: OnlineStats,
    external_latency: OnlineStats,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

/// Builds one service center honouring the config's statistics flag.
fn center(cfg: &SimConfig) -> FcfsServer<MsgId> {
    let mut server = FcfsServer::new();
    server.set_instrumented(cfg.track_center_stats);
    server
}

impl FlowModel {
    fn new(cfg: SimConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        let means = ServiceTimes::compute(&cfg.system)?;
        let clusters = cfg.system.clusters;
        Ok(FlowModel {
            n0: cfg.system.nodes_per_cluster,
            n: cfg.system.total_nodes(),
            means,
            think_rng: RngStream::new(cfg.seed, 1),
            dest_rng: RngStream::new(cfg.seed, 2),
            svc_rng: RngStream::new(cfg.seed, 3),
            dest_any: UniformInt::new(cfg.system.total_nodes() - 1),
            dest_intra: (cfg.system.nodes_per_cluster >= 2)
                .then(|| UniformInt::new(cfg.system.nodes_per_cluster - 1)),
            icn1: (0..clusters).map(|_| center(&cfg)).collect(),
            ecn1: (0..clusters).map(|_| center(&cfg)).collect(),
            icn2: center(&cfg),
            msgs: Vec::new(),
            free_ids: Vec::new(),
            delivered: 0,
            latency: OnlineStats::new(),
            internal_latency: OnlineStats::new(),
            external_latency: OnlineStats::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            cfg,
        })
    }

    /// Returns the model to the state `FlowModel::new` would produce
    /// for the same system with `seed`, keeping every allocation
    /// (server deques, message table, free list) warm. The RNG streams
    /// are rebuilt with the same stream ids, so a reset model replays
    /// a fresh model's sample path bit for bit.
    fn reset(&mut self, seed: u64) {
        self.cfg.seed = seed;
        self.think_rng = RngStream::new(seed, 1);
        self.dest_rng = RngStream::new(seed, 2);
        self.svc_rng = RngStream::new(seed, 3);
        for q in &mut self.icn1 {
            q.reset();
        }
        for q in &mut self.ecn1 {
            q.reset();
        }
        self.icn2.reset();
        self.msgs.clear();
        self.free_ids.clear();
        self.delivered = 0;
        self.latency = OnlineStats::new();
        self.internal_latency = OnlineStats::new();
        self.external_latency = OnlineStats::new();
        self.p50.reset();
        self.p95.reset();
        self.p99.reset();
    }

    fn cluster_of(&self, node: usize) -> usize {
        node / self.n0
    }

    fn sample_service(&mut self, mean_us: f64) -> f64 {
        match self.cfg.system.service_model {
            ServiceTimeModel::Exponential => self.svc_rng.exponential_mean(mean_us),
            ServiceTimeModel::Deterministic => mean_us,
            ServiceTimeModel::Erlang(k) => self.svc_rng.erlang(mean_us, k),
            ServiceTimeModel::HyperExponential(scv) => self.svc_rng.hyper_exponential(mean_us, scv),
        }
    }

    fn pick_destination(&mut self, src: usize) -> usize {
        match self.cfg.pattern {
            TrafficPattern::Uniform => self.dest_any.sample_excluding(&mut self.dest_rng, src),
            TrafficPattern::Localized { locality } => {
                match self.dest_intra {
                    Some(intra) if self.dest_rng.bernoulli(locality) => {
                        // Uniform within the source's cluster, excluding
                        // the source itself.
                        let base = self.cluster_of(src) * self.n0;
                        base + intra.sample_excluding(&mut self.dest_rng, src - base)
                    }
                    _ => self.dest_any.sample_excluding(&mut self.dest_rng, src),
                }
            }
            TrafficPattern::Hotspot { node, fraction } => {
                let hot = node.min(self.n - 1);
                if src != hot && self.dest_rng.bernoulli(fraction) {
                    hot
                } else {
                    self.dest_any.sample_excluding(&mut self.dest_rng, src)
                }
            }
        }
    }

    fn alloc_msg(&mut self, msg: Msg) -> MsgId {
        if let Some(id) = self.free_ids.pop() {
            self.msgs[id] = msg;
            id
        } else {
            self.msgs.push(msg);
            self.msgs.len() - 1
        }
    }

    fn schedule_done(&mut self, now: SimTime, s: &mut Scheduler<Ev>, ev: Ev, mean_us: f64) {
        let svc = self.sample_service(mean_us);
        s.schedule_in(now, SimTime::from_us(svc), ev);
    }

    fn deliver(&mut self, now: SimTime, s: &mut Scheduler<Ev>, id: MsgId) {
        let msg = self.msgs[id];
        self.free_ids.push(id);
        let latency = now.as_us() - msg.created_us;
        self.delivered += 1;
        if self.delivered > self.cfg.warmup_messages {
            self.latency.record(latency);
            if self.cfg.track_quantiles {
                self.p50.record(latency);
                self.p95.record(latency);
                self.p99.record(latency);
            }
            if self.cfg.track_center_stats {
                if self.cluster_of(msg.src) == self.cluster_of(msg.dst) {
                    self.internal_latency.record(latency);
                } else {
                    self.external_latency.record(latency);
                }
            }
        }
        if self.cfg.blocked_sources {
            // The source resumes thinking only now (assumption 4).
            let think = self.think_rng.exponential(self.cfg.system.lambda_per_us);
            s.schedule_in(now, SimTime::from_us(think), Ev::Generate { node: msg.src });
        }
    }

    fn measured(&self) -> u64 {
        self.latency.count()
    }
}

impl Model for FlowModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, s: &mut Scheduler<Ev>) {
        match event {
            Ev::Generate { node } => {
                let dst = self.pick_destination(node);
                let src_cluster = self.cluster_of(node);
                let dst_cluster = self.cluster_of(dst);
                let external = src_cluster != dst_cluster;
                let stage = if external { Stage::Ecn1Forward } else { Stage::Icn1 };
                let id = self.alloc_msg(Msg { src: node, dst, created_us: now.as_us(), stage });
                if external {
                    if let ServiceDirective::StartService(_) =
                        self.ecn1[src_cluster].arrive(now.as_us(), id)
                    {
                        let mean = self.means.ecn1_us;
                        self.schedule_done(now, s, Ev::Ecn1Done { cluster: src_cluster }, mean);
                    }
                } else if let ServiceDirective::StartService(_) =
                    self.icn1[src_cluster].arrive(now.as_us(), id)
                {
                    let mean = self.means.icn1_us;
                    self.schedule_done(now, s, Ev::Icn1Done { cluster: src_cluster }, mean);
                }
                if !self.cfg.blocked_sources {
                    // Open system: the source keeps generating regardless.
                    let gap = self.think_rng.exponential(self.cfg.system.lambda_per_us);
                    s.schedule_in(now, SimTime::from_us(gap), Ev::Generate { node });
                }
            }
            Ev::Icn1Done { cluster } => {
                let (id, directive) = self.icn1[cluster].complete(now.as_us());
                debug_assert_eq!(self.msgs[id].stage, Stage::Icn1);
                self.deliver(now, s, id);
                if let ServiceDirective::StartService(_) = directive {
                    let mean = self.means.icn1_us;
                    self.schedule_done(now, s, Ev::Icn1Done { cluster }, mean);
                }
            }
            Ev::Ecn1Done { cluster } => {
                let (id, directive) = self.ecn1[cluster].complete(now.as_us());
                match self.msgs[id].stage {
                    Stage::Ecn1Forward => {
                        self.msgs[id].stage = Stage::Icn2;
                        if let ServiceDirective::StartService(_) = self.icn2.arrive(now.as_us(), id)
                        {
                            let mean = self.means.icn2_us;
                            self.schedule_done(now, s, Ev::Icn2Done, mean);
                        }
                    }
                    Stage::Ecn1Feedback => self.deliver(now, s, id),
                    other => unreachable!("message in ECN1 with stage {other:?}"),
                }
                if let ServiceDirective::StartService(_) = directive {
                    let mean = self.means.ecn1_us;
                    self.schedule_done(now, s, Ev::Ecn1Done { cluster }, mean);
                }
            }
            Ev::Icn2Done => {
                let (id, directive) = self.icn2.complete(now.as_us());
                debug_assert_eq!(self.msgs[id].stage, Stage::Icn2);
                self.msgs[id].stage = Stage::Ecn1Feedback;
                let dst_cluster = self.cluster_of(self.msgs[id].dst);
                if let ServiceDirective::StartService(_) =
                    self.ecn1[dst_cluster].arrive(now.as_us(), id)
                {
                    let mean = self.means.ecn1_us;
                    self.schedule_done(now, s, Ev::Ecn1Done { cluster: dst_cluster }, mean);
                }
                if let ServiceDirective::StartService(_) = directive {
                    let mean = self.means.icn2_us;
                    self.schedule_done(now, s, Ev::Icn2Done, mean);
                }
            }
        }
    }
}

/// The flow-level simulator entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowSimulator;

impl FlowSimulator {
    /// Runs one simulation and returns the sink statistics.
    pub fn run(cfg: &SimConfig) -> Result<SimResult, ModelError> {
        Ok(FlowSimInstance::new(cfg)?.run(cfg.seed))
    }
}

/// A reusable flow-level simulator: build once per system
/// configuration, then [`FlowSimInstance::run`] any number of seeds
/// while the event list, server deques, and message table keep their
/// storage warm. Every run is bit-identical to a fresh
/// [`FlowSimulator::run`] of the same configuration and seed.
#[derive(Debug)]
pub struct FlowSimInstance {
    engine: Engine<FlowModel>,
}

impl FlowSimInstance {
    /// Builds the simulator for `cfg`'s system.
    pub fn new(cfg: &SimConfig) -> Result<Self, ModelError> {
        let model = FlowModel::new(*cfg)?;
        // Pending-event bound: one Generate per source plus at most one
        // Done per server (per-cluster ICN1 + ECN1 and the global ICN2).
        let capacity = model.n + 2 * model.icn1.len() + 1;
        Ok(FlowSimInstance { engine: Engine::with_capacity(model, capacity) })
    }

    /// Runs one replication seeded with `seed` and returns the sink
    /// statistics.
    pub fn run(&mut self, seed: u64) -> SimResult {
        let engine = &mut self.engine;
        engine.reset();
        engine.model_mut().reset(seed);
        let (n, lambda) = (engine.model().n, engine.model().cfg.system.lambda_per_us);
        // Every processor starts in the thinking state.
        for node in 0..n {
            let think = engine.model_mut().think_rng.exponential(lambda);
            engine.scheduler_mut().schedule_at(SimTime::from_us(think), Ev::Generate { node });
        }
        let target = engine.model().cfg.messages;
        engine.run_until(None, None, |m| m.measured() >= target);
        let now = engine.now().as_us();
        // Bridge the engine's local counters into the global registry
        // (the DES kernel deliberately knows nothing about hmcs-core).
        metrics::counter(metrics_keys::FLOW_EVENTS).add(engine.events_processed());
        metrics::histogram(metrics_keys::FLOW_PEAK_PENDING)
            .record(engine.scheduler().peak_pending() as u64);
        Self::collect(engine.model(), now)
    }

    fn collect(model: &FlowModel, now: f64) -> SimResult {
        let avg_center = |servers: &[FcfsServer<MsgId>]| -> CenterObservation {
            let k = servers.len() as f64;
            CenterObservation {
                mean_number_in_system: servers
                    .iter()
                    .map(|q| q.mean_number_in_system(now))
                    .sum::<f64>()
                    / k,
                utilization: servers.iter().map(|q| q.utilization(now)).sum::<f64>() / k,
                arrivals: servers.iter().map(|q| q.arrivals()).sum(),
            }
        };

        let measured = model.latency.count();
        SimResult {
            mean_latency_us: model.latency.mean(),
            latency: model.latency.clone(),
            quantiles: match (model.p50.estimate(), model.p95.estimate(), model.p99.estimate()) {
                (Some(p50_us), Some(p95_us), Some(p99_us)) => {
                    Some(crate::result::LatencyQuantiles { p50_us, p95_us, p99_us })
                }
                _ => None,
            },
            internal_latency: model.internal_latency.clone(),
            external_latency: model.external_latency.clone(),
            messages: measured,
            sim_duration_us: now,
            throughput_per_us: model.delivered as f64 / now,
            effective_lambda_per_us: model.delivered as f64 / now / model.n as f64,
            per_cluster_ecn1_utilization: model.ecn1.iter().map(|q| q.utilization(now)).collect(),
            icn1: avg_center(&model.icn1),
            ecn1: avg_center(&model.ecn1),
            icn2: CenterObservation {
                mean_number_in_system: model.icn2.mean_number_in_system(now),
                utilization: model.icn2.utilization(now),
                arrivals: model.icn2.arrivals(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::config::SystemConfig;
    use hmcs_core::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn system(clusters: usize, arch: Architecture) -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, clusters, arch).unwrap()
    }

    #[test]
    fn runs_and_counts_messages() {
        let cfg =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(2_000).with_seed(1);
        let r = FlowSimulator::run(&cfg).unwrap();
        assert_eq!(r.messages, 2_000);
        assert!(r.mean_latency_us > 0.0);
        assert!(r.sim_duration_us > 0.0);
        assert!(r.throughput_per_us > 0.0);
    }

    #[test]
    fn reproducible_under_the_same_seed() {
        let cfg =
            SimConfig::new(system(4, Architecture::NonBlocking)).with_messages(1_000).with_seed(77);
        let a = FlowSimulator::run(&cfg).unwrap();
        let b = FlowSimulator::run(&cfg).unwrap();
        assert_eq!(a, b);
        let c = FlowSimulator::run(&cfg.with_seed(78)).unwrap();
        assert_ne!(a.mean_latency_us, c.mean_latency_us);
    }

    #[test]
    fn reset_reuse_is_bit_identical_to_fresh_builds() {
        // The reset-reuse contract: one instance run with
        // seeds s1, s2, s1 must reproduce three fresh builds exactly —
        // including the repeat of s1, which proves the reset leaks no
        // state from the s2 run.
        let cfg =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(1_500).with_seed(7);
        let fresh_a = FlowSimulator::run(&cfg).unwrap();
        let fresh_b = FlowSimulator::run(&cfg.with_seed(8)).unwrap();
        let mut instance = FlowSimInstance::new(&cfg).unwrap();
        assert_eq!(instance.run(7), fresh_a);
        assert_eq!(instance.run(8), fresh_b);
        assert_eq!(instance.run(7), fresh_a);
    }

    #[test]
    fn external_fraction_tracks_eq8() {
        // C=16, N0=16: P = 240/255 ~ 0.941.
        let cfg =
            SimConfig::new(system(16, Architecture::NonBlocking)).with_messages(8_000).with_seed(3);
        let r = FlowSimulator::run(&cfg).unwrap();
        let p = hmcs_core::routing::external_probability(16, 16);
        assert!(
            (r.external_fraction() - p).abs() < 0.02,
            "sim {} vs eq8 {p}",
            r.external_fraction()
        );
    }

    #[test]
    fn single_cluster_has_no_external_traffic() {
        let cfg =
            SimConfig::new(system(1, Architecture::NonBlocking)).with_messages(1_000).with_seed(5);
        let r = FlowSimulator::run(&cfg).unwrap();
        assert_eq!(r.external_latency.count(), 0);
        assert_eq!(r.icn2.arrivals, 0);
        assert_eq!(r.external_fraction(), 0.0);
    }

    #[test]
    fn external_messages_cost_more_than_internal() {
        // External messages traverse three centres instead of one.
        let cfg =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(6_000).with_seed(11);
        let r = FlowSimulator::run(&cfg).unwrap();
        assert!(r.external_latency.mean() > r.internal_latency.mean());
    }

    #[test]
    fn blocking_architecture_is_slower() {
        let nb = FlowSimulator::run(
            &SimConfig::new(system(16, Architecture::NonBlocking))
                .with_messages(3_000)
                .with_seed(13),
        )
        .unwrap();
        let bl = FlowSimulator::run(
            &SimConfig::new(system(16, Architecture::Blocking)).with_messages(3_000).with_seed(13),
        )
        .unwrap();
        assert!(bl.mean_latency_us > nb.mean_latency_us);
    }

    #[test]
    fn blocked_sources_throttle_throughput() {
        // With blocked sources the effective rate must be strictly below
        // the nominal lambda under load.
        let cfg = SimConfig::new(system(32, Architecture::NonBlocking))
            .with_messages(4_000)
            .with_seed(17);
        let r = FlowSimulator::run(&cfg).unwrap();
        assert!(r.effective_lambda_per_us < cfg.system.lambda_per_us);
        assert!(r.effective_lambda_per_us > 0.0);
    }

    #[test]
    fn localized_traffic_reduces_external_fraction() {
        use hmcs_core::routing::TrafficPattern;
        let base =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(4_000).with_seed(19);
        let uniform = FlowSimulator::run(&base).unwrap();
        let local =
            FlowSimulator::run(&base.with_pattern(TrafficPattern::Localized { locality: 0.8 }))
                .unwrap();
        assert!(local.external_fraction() < uniform.external_fraction() * 0.5);
        // Less inter-cluster traffic => lower mean latency in Case 1
        // (slow inter-cluster tiers).
        assert!(local.mean_latency_us < uniform.mean_latency_us);
    }

    #[test]
    fn warmup_messages_are_discarded() {
        let base = SimConfig::new(system(4, Architecture::NonBlocking)).with_seed(23);
        let with_warmup = FlowSimulator::run(&base.with_messages(1_000).with_warmup(500)).unwrap();
        assert_eq!(with_warmup.messages, 1_000);
        // The run had to deliver warmup + measured messages.
        let no_warmup = FlowSimulator::run(&base.with_messages(1_000)).unwrap();
        assert!(with_warmup.sim_duration_us > no_warmup.sim_duration_us);
    }

    #[test]
    fn deterministic_service_reduces_latency_variance() {
        use hmcs_core::config::ServiceTimeModel;
        // Moderate load: at the paper preset λ the ICN2 saturates for
        // C=8 Case 1, and a saturated closed network pins mean latency
        // at population/throughput regardless of service variability —
        // the det-vs-exp mean comparison is then pure seed noise. Below
        // saturation the M/G/1 waiting term (1+SCV)/2 applies, so
        // deterministic service strictly reduces both mean and variance.
        let sys = system(8, Architecture::NonBlocking).with_lambda(1e-5);
        let base = SimConfig::new(sys).with_messages(4_000).with_seed(29);
        let exp = FlowSimulator::run(&base).unwrap();
        let det = {
            let mut cfg = base;
            cfg.system = cfg.system.with_service_model(ServiceTimeModel::Deterministic);
            FlowSimulator::run(&cfg).unwrap()
        };
        assert!(det.latency.variance() < exp.latency.variance());
        assert!(det.mean_latency_us < exp.mean_latency_us);
    }

    #[test]
    fn quantiles_bracket_the_mean() {
        let cfg =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(4_000).with_seed(41);
        let r = FlowSimulator::run(&cfg).unwrap();
        let q = r.quantiles.expect("quantiles present");
        assert!(q.p50_us < q.p95_us && q.p95_us < q.p99_us);
        assert!(q.p50_us > 0.0);
        assert!(q.p99_us <= r.latency.max().unwrap() + 1e-9);
        assert!(q.p50_us >= r.latency.min().unwrap() - 1e-9);
    }

    #[test]
    fn disabling_quantiles_changes_nothing_else() {
        let cfg =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(2_000).with_seed(47);
        let tracked = FlowSimulator::run(&cfg).unwrap();
        let untracked = FlowSimulator::run(&cfg.with_quantiles(false)).unwrap();
        assert!(tracked.quantiles.is_some());
        assert!(untracked.quantiles.is_none());
        let mut masked = tracked.clone();
        masked.quantiles = None;
        assert_eq!(masked, untracked);
    }

    #[test]
    fn disabling_center_stats_keeps_every_delivery_statistic() {
        let cfg =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(2_000).with_seed(47);
        let tracked = FlowSimulator::run(&cfg).unwrap();
        let bare = FlowSimulator::run(&cfg.with_center_stats(false)).unwrap();
        // The sample path is untouched: every latency / throughput
        // statistic is bit-identical.
        assert_eq!(bare.latency, tracked.latency);
        assert_eq!(bare.mean_latency_us.to_bits(), tracked.mean_latency_us.to_bits());
        assert_eq!(bare.throughput_per_us.to_bits(), tracked.throughput_per_us.to_bits());
        assert_eq!(bare.quantiles, tracked.quantiles);
        assert_eq!(bare.messages, tracked.messages);
        assert_eq!(bare.icn1.arrivals, tracked.icn1.arrivals);
        // Only the per-center observations go dark.
        assert!(tracked.icn1.utilization > 0.0);
        assert_eq!(bare.icn1.utilization, 0.0);
        assert_eq!(bare.icn1.mean_number_in_system, 0.0);
        assert!(bare.per_cluster_ecn1_utilization.iter().all(|&u| u == 0.0));
        assert_eq!(bare.internal_latency.count(), 0);
        assert_eq!(bare.external_latency.count(), 0);
    }

    #[test]
    fn hotspot_traffic_adds_locality_for_the_hot_cluster() {
        use hmcs_core::routing::TrafficPattern;
        // With 80% of messages aimed at node 0, the hot node's own
        // cluster sends most of its traffic internally, so the system's
        // external fraction DROPS relative to uniform — which unloads
        // the saturated ICN2 bottleneck and raises the delivered rate.
        // (A counterintuitive closed-network effect the simulator
        // captures and the symmetric model only sees through the mean
        // external probability; see TrafficPattern::Hotspot docs.)
        let base =
            SimConfig::new(system(8, Architecture::NonBlocking)).with_messages(4_000).with_seed(43);
        let uniform = FlowSimulator::run(&base).unwrap();
        let hot = FlowSimulator::run(
            &base.with_pattern(TrafficPattern::Hotspot { node: 0, fraction: 0.8 }),
        )
        .unwrap();
        assert!(hot.external_fraction() < uniform.external_fraction() - 0.05);
        assert!(hot.effective_lambda_per_us > uniform.effective_lambda_per_us);
        // The model hook predicts the same direction for the mean
        // external probability.
        let p_uniform = TrafficPattern::Uniform.external_probability(8, 32);
        let p_hot = TrafficPattern::Hotspot { node: 0, fraction: 0.8 }.external_probability(8, 32);
        assert!(p_hot < p_uniform);
        // The measured fraction sits well BELOW the model's offered-mix
        // prediction: hot-cluster sources cycle faster (their internal
        // messages dodge the throttled ICN2), so delivered messages
        // over-represent internal traffic. This differential throttling
        // is exactly the asymmetry the symmetric model cannot capture.
        assert!(
            hot.external_fraction() < p_hot - 0.05,
            "sim {} vs offered-mix model {p_hot}",
            hot.external_fraction()
        );
    }

    #[test]
    fn hotspot_asymmetry_shows_in_per_cluster_utilizations() {
        use hmcs_core::routing::TrafficPattern;
        // Moderate load so no tier saturates and asymmetry is visible
        // in the raw utilizations.
        let sys = system(8, Architecture::NonBlocking).with_lambda(1e-5);
        let cfg = SimConfig::new(sys)
            .with_messages(6_000)
            .with_seed(51)
            .with_pattern(TrafficPattern::Hotspot { node: 0, fraction: 0.5 });
        let r = FlowSimulator::run(&cfg).unwrap();
        let utils = &r.per_cluster_ecn1_utilization;
        assert_eq!(utils.len(), 8);
        let hot = utils[0];
        let others = utils[1..].iter().sum::<f64>() / 7.0;
        assert!(hot > 2.0 * others, "hot cluster ECN1 should dominate: {hot} vs avg {others}");
        // Uniform traffic keeps them balanced.
        let uniform =
            FlowSimulator::run(&SimConfig::new(sys).with_messages(6_000).with_seed(51)).unwrap();
        let u = &uniform.per_cluster_ecn1_utilization;
        let max = u.iter().cloned().fold(0.0f64, f64::max);
        let min = u.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max < 1.5 * min, "uniform traffic stays balanced: {u:?}");
    }

    #[test]
    fn open_system_matches_mm1_theory_per_tier() {
        // Light open load: each tier behaves as an independent M/M/1.
        let sys = system(16, Architecture::NonBlocking).with_lambda(2e-6);
        let cfg =
            SimConfig::new(sys).with_messages(30_000).with_blocked_sources(false).with_seed(31);
        let r = FlowSimulator::run(&cfg).unwrap();
        // ICN2: lambda = C N0 P lambda.
        let p = hmcs_core::routing::external_probability(16, 16);
        let lam_icn2 = 256.0 * p * 2e-6;
        let t_icn2 = hmcs_core::service::ServiceTimes::compute(&sys).unwrap().icn2_us;
        let rho = lam_icn2 * t_icn2;
        assert!(
            (r.icn2.utilization - rho).abs() < 0.05 * rho.max(0.01),
            "sim {} vs theory {rho}",
            r.icn2.utilization
        );
    }
}
