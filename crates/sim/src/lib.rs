//! # hmcs-sim
//!
//! Discrete-event simulators for heterogeneous multi-cluster systems —
//! the "set of simulators" the paper uses to validate its analytical
//! model (§6).
//!
//! Two fidelity levels are provided, both driven by the *same*
//! [`hmcs_core::config::SystemConfig`] the analytical model consumes:
//!
//! * [`flow`] — a **flow-level** simulator that mirrors the queueing
//!   abstraction: each network tier is one FCFS server; service times
//!   are drawn from the configured distribution with the topology-model
//!   mean. This is the direct counterpart of the paper's own simulator:
//!   exponential inter-arrival times, uniform destinations, sources that
//!   block until delivery (assumption 4), time-stamped messages and a
//!   sink module, 10,000 messages per run.
//! * [`packet`] — a **packet-level** simulator that walks each message
//!   hop-by-hop through the explicitly constructed switch fabrics
//!   (fat-tree pods / linear-array switches) with store-and-forward
//!   contention at every switch. It contains none of the model's
//!   queueing approximations, making it the stronger referee.
//!
//! [`coc`] extends the flow-level simulator to heterogeneous
//! Cluster-of-Clusters systems (the paper's §7 future work), and
//! [`replication`] runs independent replications with confidence
//! intervals on the shared bounded worker pool ([`hmcs_core::batch`]):
//! seeds are fixed by replication index, each worker reuses one
//! simulator instance across the replications it claims, and the
//! summary is identical for any worker count.
//!
//! [`shard`] scales the flow-level model to 10k–100k-node systems by
//! simulating one cluster per shard (exact local traffic, Poisson
//! background for the shared ICN2) over the same worker pool,
//! optionally modulated by a measured
//! [`hmcs_topology::latmatrix::LatencySource`].
//!
//! ```
//! use hmcs_core::config::SystemConfig;
//! use hmcs_core::scenario::Scenario;
//! use hmcs_topology::transmission::Architecture;
//! use hmcs_sim::config::SimConfig;
//! use hmcs_sim::flow::FlowSimulator;
//!
//! let system = SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking)
//!     .unwrap();
//! let sim = SimConfig::new(system).with_messages(2_000).with_seed(7);
//! let result = FlowSimulator::run(&sim).unwrap();
//! assert!(result.mean_latency_us > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coc;
pub mod config;
pub mod flow;
pub mod metrics_keys;
pub mod multiserver;
pub mod packet;
pub mod replication;
pub mod result;
pub mod shard;

pub use config::SimConfig;
pub use result::SimResult;
