//! Metric names the simulators record into the process-global
//! [`hmcs_core::metrics`] registry. The DES kernel (`hmcs-des`) stays
//! free of `hmcs-core` by design, so this crate bridges the engine's
//! local counters (events processed/scheduled, future-event-list peak)
//! into the shared registry after each run.

/// Counter: replication batches started.
pub const REPLICATION_BATCHES: &str = "sim.replication.batches";
/// Counter: individual replications completed.
pub const REPLICATION_RUNS: &str = "sim.replication.runs";
/// Histogram: per-replication wall-clock time (µs).
pub const REPLICATION_WALL_US: &str = "sim.replication.wall_us";
/// Counter: DES events processed by flow-level runs.
pub const FLOW_EVENTS: &str = "sim.flow.events_processed";
/// Histogram: future-event-list high-water mark per flow-level run.
pub const FLOW_PEAK_PENDING: &str = "sim.flow.peak_pending";
/// Counter: DES events processed by packet-level runs.
pub const PACKET_EVENTS: &str = "sim.packet.events_processed";
/// Histogram: future-event-list high-water mark per packet-level run.
pub const PACKET_PEAK_PENDING: &str = "sim.packet.peak_pending";
/// Counter: shard simulations completed by the sharded driver.
pub const SHARD_RUNS: &str = "sim.shard.shards";
/// Counter: background ICN2 jobs absorbed (cross-shard load in).
pub const SHARD_BOUNDARY_IN: &str = "sim.shard.boundary_in";
/// Counter: local external messages that crossed the ICN2 (load out).
pub const SHARD_BOUNDARY_OUT: &str = "sim.shard.boundary_out";
/// Histogram: per-shard wall-clock (busy) time (µs).
pub const SHARD_BUSY_US: &str = "sim.shard.busy_us";
/// Histogram: per-shard ICN2 idle simulated time (µs).
pub const SHARD_IDLE_US: &str = "sim.shard.idle_us";
