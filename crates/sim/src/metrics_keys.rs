//! Metric names the simulators record into the process-global
//! [`hmcs_core::metrics`] registry. The DES kernel (`hmcs-des`) stays
//! free of `hmcs-core` by design, so this crate bridges the engine's
//! local counters (events processed/scheduled, future-event-list peak)
//! into the shared registry after each run.

/// Counter: replication batches started.
pub const REPLICATION_BATCHES: &str = "sim.replication.batches";
/// Counter: individual replications completed.
pub const REPLICATION_RUNS: &str = "sim.replication.runs";
/// Histogram: per-replication wall-clock time (µs).
pub const REPLICATION_WALL_US: &str = "sim.replication.wall_us";
/// Counter: DES events processed by flow-level runs.
pub const FLOW_EVENTS: &str = "sim.flow.events_processed";
/// Histogram: future-event-list high-water mark per flow-level run.
pub const FLOW_PEAK_PENDING: &str = "sim.flow.peak_pending";
/// Counter: DES events processed by packet-level runs.
pub const PACKET_EVENTS: &str = "sim.packet.events_processed";
/// Histogram: future-event-list high-water mark per packet-level run.
pub const PACKET_PEAK_PENDING: &str = "sim.packet.peak_pending";
