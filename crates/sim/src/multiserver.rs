//! A multi-server FCFS queue for the packet-level simulator.
//!
//! A fat-tree "pod" contains several parallel switches; a message
//! arriving at the pod can be served by any idle member switch. The pod
//! is therefore an FCFS queue with `c` servers. (The linear-array
//! switches are pods of capacity 1.)

use hmcs_des::stats::{OnlineStats, TimeWeighted};
use std::collections::VecDeque;

/// Caller directive after an arrival or completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiDirective<T> {
    /// Start serving this customer now (schedule its completion).
    Start(T),
    /// No state change for the caller to act on.
    Idle,
}

/// An FCFS queue with `c` identical servers.
///
/// [`MultiServer::complete`] returns the **longest-serving** customer.
/// That identification is exact when all services at this resource have
/// the same deterministic duration (the packet simulator's case, where
/// every hop costs `α_sw + M·β`); for heterogeneous service times use
/// one resource per server instead.
#[derive(Debug, Clone)]
pub struct MultiServer<T> {
    capacity: u32,
    in_service: VecDeque<T>,
    waiting: VecDeque<(T, f64)>,
    waiting_times: OnlineStats,
    occupancy: TimeWeighted,
    arrivals: u64,
    departures: u64,
    instrumented: bool,
}

impl<T: Clone> MultiServer<T> {
    /// Creates an idle queue with `capacity` servers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "multi-server queue needs at least one server");
        MultiServer {
            capacity,
            in_service: VecDeque::new(),
            waiting: VecDeque::new(),
            waiting_times: OnlineStats::new(),
            occupancy: TimeWeighted::new(),
            arrivals: 0,
            departures: 0,
            instrumented: true,
        }
    }

    /// Switches the per-event statistics (waiting times, time-weighted
    /// occupancy) on or off. Queueing behaviour — directives, FIFO
    /// order, arrival/departure counts — is unchanged either way; with
    /// instrumentation off, [`MultiServer::waiting_time_stats`] stays
    /// empty and [`MultiServer::mean_number_in_system`] reports zero.
    /// Survives [`MultiServer::reset`].
    pub fn set_instrumented(&mut self, instrumented: bool) {
        self.instrumented = instrumented;
    }

    /// Server count.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Customers present (waiting + in service).
    pub fn len(&self) -> usize {
        self.waiting.len() + self.in_service.len()
    }

    /// True when nobody is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A customer arrives; starts service immediately if a server is
    /// free.
    pub fn arrive(&mut self, now: f64, customer: T) -> MultiDirective<T> {
        self.arrivals += 1;
        let directive = if (self.in_service.len() as u32) < self.capacity {
            self.in_service.push_back(customer.clone());
            if self.instrumented {
                self.waiting_times.record(0.0);
            }
            MultiDirective::Start(customer)
        } else {
            self.waiting.push_back((customer, now));
            MultiDirective::Idle
        };
        if self.instrumented {
            self.occupancy.update(now, self.len() as f64);
        }
        directive
    }

    /// The longest-serving customer completes; promotes the head waiter
    /// if any. Returns the finished customer and the follow-up
    /// directive.
    ///
    /// # Panics
    ///
    /// Panics if no server was busy.
    pub fn complete(&mut self, now: f64) -> (T, MultiDirective<T>) {
        let done = self.in_service.pop_front().expect("completion with no busy server");
        self.departures += 1;
        let directive = match self.waiting.pop_front() {
            Some((next, arrived)) => {
                // The freed server immediately takes the head waiter.
                if self.instrumented {
                    self.waiting_times.record(now - arrived);
                }
                self.in_service.push_back(next.clone());
                MultiDirective::Start(next)
            }
            None => MultiDirective::Idle,
        };
        if self.instrumented {
            self.occupancy.update(now, self.len() as f64);
        }
        (done, directive)
    }

    /// Waiting-time statistics (time in queue before service).
    pub fn waiting_time_stats(&self) -> &OnlineStats {
        &self.waiting_times
    }

    /// Time-weighted mean number present up to `now`.
    pub fn mean_number_in_system(&self, now: f64) -> f64 {
        self.occupancy.mean_until(now)
    }

    /// Total arrivals.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total departures.
    pub fn departures(&self) -> u64 {
        self.departures
    }

    /// Returns the queue to its just-constructed state (same
    /// `capacity`) while keeping both deques' storage, so a reused
    /// queue behaves exactly like a fresh one without reallocating.
    pub fn reset(&mut self) {
        self.in_service.clear();
        self.waiting.clear();
        self.waiting_times = OnlineStats::new();
        self.occupancy = TimeWeighted::new();
        self.arrivals = 0;
        self.departures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_servers_admit_up_to_capacity() {
        let mut q: MultiServer<u32> = MultiServer::new(2);
        assert_eq!(q.arrive(0.0, 1), MultiDirective::Start(1));
        assert_eq!(q.arrive(0.0, 2), MultiDirective::Start(2));
        assert_eq!(q.arrive(0.0, 3), MultiDirective::Idle);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn completion_promotes_fifo_and_identifies_finisher() {
        let mut q: MultiServer<u32> = MultiServer::new(1);
        q.arrive(0.0, 1);
        q.arrive(1.0, 2);
        q.arrive(2.0, 3);
        assert_eq!(q.complete(5.0), (1, MultiDirective::Start(2)));
        assert_eq!(q.complete(8.0), (2, MultiDirective::Start(3)));
        assert_eq!(q.complete(9.0), (3, MultiDirective::Idle));
        assert!(q.is_empty());
        // Waits: msg2 waited 4, msg3 waited 6.
        assert_eq!(q.waiting_time_stats().count(), 3);
        assert!((q.waiting_time_stats().mean() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_one_matches_single_server_semantics() {
        let mut q: MultiServer<u32> = MultiServer::new(1);
        assert_eq!(q.arrive(0.0, 7), MultiDirective::Start(7));
        assert_eq!(q.arrive(0.5, 8), MultiDirective::Idle);
        assert_eq!(q.complete(1.0), (7, MultiDirective::Start(8)));
        assert_eq!(q.complete(2.0), (8, MultiDirective::Idle));
        assert_eq!(q.departures(), 2);
        assert_eq!(q.arrivals(), 2);
    }

    #[test]
    fn parallel_completions_pop_in_start_order() {
        let mut q: MultiServer<u32> = MultiServer::new(3);
        q.arrive(0.0, 10);
        q.arrive(1.0, 11);
        q.arrive(2.0, 12);
        // Deterministic equal service: starts at 0, 1, 2 complete in
        // the same order.
        assert_eq!(q.complete(4.0).0, 10);
        assert_eq!(q.complete(5.0).0, 11);
        assert_eq!(q.complete(6.0).0, 12);
    }

    #[test]
    fn occupancy_time_average() {
        let mut q: MultiServer<u32> = MultiServer::new(2);
        q.arrive(0.0, 1);
        q.arrive(0.0, 2);
        q.complete(10.0);
        q.complete(10.0);
        // 2 customers for 10 units, then none until 20: mean = 1.0.
        assert!((q.mean_number_in_system(20.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no busy server")]
    fn completion_when_idle_is_a_bug() {
        let mut q: MultiServer<u32> = MultiServer::new(3);
        q.complete(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _: MultiServer<u32> = MultiServer::new(0);
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let mut q: MultiServer<u32> = MultiServer::new(2);
        q.arrive(0.0, 1);
        q.arrive(0.0, 2);
        q.arrive(1.0, 3);
        q.complete(4.0);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.arrivals(), 0);
        assert_eq!(q.departures(), 0);
        assert_eq!(q.waiting_time_stats().count(), 0);
        // A replayed history produces the same statistics as on a
        // fresh queue.
        let mut fresh: MultiServer<u32> = MultiServer::new(2);
        for s in [&mut q, &mut fresh] {
            s.arrive(0.0, 1);
            s.arrive(0.0, 2);
            s.complete(10.0);
            s.complete(10.0);
        }
        assert_eq!(q.waiting_time_stats(), fresh.waiting_time_stats());
        assert_eq!(
            q.mean_number_in_system(20.0).to_bits(),
            fresh.mean_number_in_system(20.0).to_bits()
        );
    }
}
