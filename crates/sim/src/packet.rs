//! The packet-level simulator — the high-fidelity member of the
//! paper's "set of simulators".
//!
//! Unlike the flow-level simulator (which, like the analysis, treats
//! each network tier as one abstract server), this simulator walks every
//! message **hop by hop** through explicitly constructed switch fabrics:
//!
//! * the fat-tree is represented by its pods (groups of parallel
//!   switches, see `hmcs_topology::fat_tree`), each a multi-server FCFS
//!   resource with one server per member switch;
//! * the linear array is a chain of single-server switch resources —
//!   contention on the shared middle switches produces head-of-line
//!   blocking *naturally*, with no `(N/2)·M·β` model term;
//! * store-and-forward: each switch holds a message for
//!   `α_sw + M·β` (switch latency plus the full payload transmission);
//!   entering a tier costs the link latency `α` once as a pure delay;
//! * inter-cluster messages ride the source ECN1 fabric *up* to its
//!   root/gateway, cross ICN2 between cluster endpoints, and ride the
//!   destination ECN1 *down*.
//!
//! Because of the per-hop payload retransmission, zero-load latencies
//! sit `(hops−1)·M·β` above eq. 11's cut-through-style accounting; the
//! comparison experiments treat the packet simulator as a *referee of
//! trends*, not of absolute values (EXPERIMENTS.md discusses the
//! offsets).

use crate::config::SimConfig;
use crate::metrics_keys;
use crate::multiserver::{MultiDirective, MultiServer};
use crate::result::{CenterObservation, SimResult};
use hmcs_core::error::ModelError;
use hmcs_core::metrics;
use hmcs_core::routing::TrafficPattern;
use hmcs_des::engine::{Engine, Model, Scheduler};
use hmcs_des::quantile::P2Quantile;
use hmcs_des::rng::RngStream;
use hmcs_des::stats::OnlineStats;
use hmcs_des::time::SimTime;
use hmcs_topology::transmission::Architecture;

type MsgId = usize;

/// One step of a message's itinerary.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    /// Pure (uncontended) delay, e.g. a link latency α.
    Delay(f64),
    /// Queue at the global resource with this index.
    Queue(usize),
}

#[derive(Debug, Clone)]
struct Msg {
    src: usize,
    dst: usize,
    created_us: f64,
    itinerary: Vec<Step>,
    cursor: usize,
}

/// Which of the three tiers a fabric instance implements (used to
/// aggregate observations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Icn1,
    Ecn1,
    Icn2,
}

/// A switch fabric laid out as globally indexed pod resources.
#[derive(Debug, Clone)]
struct TierFabric {
    arch: Architecture,
    endpoints: usize,
    down_radix: usize,
    ports: usize,
    stages: u32,
    /// Global resource index of this fabric's first pod.
    base: usize,
    /// Local offsets of each stage's first pod (fat-tree only).
    stage_offsets: Vec<usize>,
    /// Pods per stage (fat-tree) or `[k]` (linear array).
    pods_per_stage: Vec<usize>,
    /// Tier entry latency α.
    injection_us: f64,
}

impl TierFabric {
    fn new(
        arch: Architecture,
        endpoints: usize,
        ports: usize,
        base: usize,
        injection_us: f64,
    ) -> Self {
        let down_radix = (ports / 2).max(1);
        match arch {
            Architecture::NonBlocking => {
                // Mirror hmcs-topology's fat-tree structure.
                let stages = {
                    let mut d = 1u32;
                    let mut cap = ports as u128;
                    while cap < endpoints as u128 {
                        d += 1;
                        cap = cap.saturating_mul(down_radix as u128);
                    }
                    d
                };
                let mut pods_per_stage = Vec::new();
                let mut block = down_radix;
                for s in 1..=stages {
                    let pods = if s == stages { 1 } else { endpoints.div_ceil(block) };
                    pods_per_stage.push(pods);
                    block = block.saturating_mul(down_radix);
                }
                let mut stage_offsets = Vec::with_capacity(pods_per_stage.len());
                let mut acc = 0;
                for &p in &pods_per_stage {
                    stage_offsets.push(acc);
                    acc += p;
                }
                TierFabric {
                    arch,
                    endpoints,
                    down_radix,
                    ports,
                    stages,
                    base,
                    stage_offsets,
                    pods_per_stage,
                    injection_us,
                }
            }
            Architecture::Blocking => {
                let k = endpoints.div_ceil(ports);
                TierFabric {
                    arch,
                    endpoints,
                    down_radix,
                    ports,
                    stages: 1,
                    base,
                    stage_offsets: vec![0],
                    pods_per_stage: vec![k],
                    injection_us,
                }
            }
        }
    }

    fn pod_count(&self) -> usize {
        self.pods_per_stage.iter().sum()
    }

    /// Capacity (parallel switches) of each pod, in local pod order.
    fn pod_capacities(&self) -> Vec<u32> {
        match self.arch {
            Architecture::Blocking => vec![1; self.pod_count()],
            Architecture::NonBlocking => {
                let mut caps = Vec::with_capacity(self.pod_count());
                let mut block = self.down_radix;
                for (idx, &pods) in self.pods_per_stage.iter().enumerate() {
                    let s = idx + 1;
                    for g in 0..pods {
                        let covered = if s as u32 == self.stages {
                            self.endpoints
                        } else {
                            self.endpoints.min((g + 1) * block).saturating_sub(g * block)
                        };
                        let switches = if s as u32 == self.stages {
                            self.endpoints.div_ceil(self.ports)
                        } else {
                            covered.div_ceil(self.down_radix)
                        };
                        caps.push(switches.max(1) as u32);
                    }
                    block = block.saturating_mul(self.down_radix);
                }
                caps
            }
        }
    }

    /// Local pod id of endpoint `a` at stage `s` (1-based).
    fn pod_of(&self, a: usize, s: u32) -> usize {
        if s == self.stages {
            return self.stage_offsets[s as usize - 1];
        }
        let block = self.down_radix.pow(s);
        self.stage_offsets[s as usize - 1] + a / block
    }

    /// Full route between two endpoints (global resource indices).
    fn route(&self, a: usize, b: usize) -> Vec<usize> {
        assert_ne!(a, b, "routing requires distinct endpoints");
        match self.arch {
            Architecture::Blocking => {
                let sa = a / self.ports;
                let sb = b / self.ports;
                let (lo, hi) = (sa.min(sb), sa.max(sb));
                let mut path: Vec<usize> = (lo..=hi).map(|s| self.base + s).collect();
                if sa > sb {
                    path.reverse();
                }
                path
            }
            Architecture::NonBlocking => {
                // Meet stage: lowest stage at which the endpoints share a
                // pod.
                let mut meet = self.stages;
                let mut block = self.down_radix;
                for s in 1..self.stages {
                    if a / block == b / block {
                        meet = s;
                        break;
                    }
                    block = block.saturating_mul(self.down_radix);
                }
                let mut path = Vec::with_capacity(2 * meet as usize - 1);
                for s in 1..=meet {
                    path.push(self.base + self.pod_of(a, s));
                }
                for s in (1..meet).rev() {
                    path.push(self.base + self.pod_of(b, s));
                }
                path
            }
        }
    }

    /// Route from endpoint `a` up to the fabric's root/gateway
    /// (fat-tree: the root pod; linear array: switch 0).
    fn route_up(&self, a: usize) -> Vec<usize> {
        match self.arch {
            Architecture::Blocking => {
                let sa = a / self.ports;
                (0..=sa).rev().map(|s| self.base + s).collect()
            }
            Architecture::NonBlocking => {
                (1..=self.stages).map(|s| self.base + self.pod_of(a, s)).collect()
            }
        }
    }

    /// Route from the root/gateway down to endpoint `b` (excluding a
    /// repeated root visit is the caller's concern — this includes the
    /// root).
    fn route_down(&self, b: usize) -> Vec<usize> {
        let mut up = self.route_up(b);
        up.reverse();
        up
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Generate {
        node: usize,
    },
    /// The message finished a pure-delay step.
    Advance {
        msg: MsgId,
    },
    /// A resource finished its current service.
    HopDone {
        resource: usize,
    },
}

struct PacketModel {
    cfg: SimConfig,
    n0: usize,
    n: usize,
    icn1: Vec<TierFabric>,
    ecn1: Vec<TierFabric>,
    icn2: TierFabric,
    resources: Vec<MultiServer<MsgId>>,
    resource_service_us: Vec<f64>,
    resource_tier: Vec<Tier>,
    think_rng: RngStream,
    dest_rng: RngStream,
    msgs: Vec<Msg>,
    free_ids: Vec<MsgId>,
    delivered: u64,
    latency: OnlineStats,
    internal_latency: OnlineStats,
    external_latency: OnlineStats,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl PacketModel {
    fn new(cfg: SimConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        let sys = cfg.system;
        let n0 = sys.nodes_per_cluster;
        let m = sys.message_bytes as f64;
        let sw_lat = sys.switch.latency_us();
        let ports = sys.switch.ports() as usize;

        let mut resources: Vec<MultiServer<MsgId>> = Vec::new();
        let mut resource_service_us: Vec<f64> = Vec::new();
        let mut resource_tier: Vec<Tier> = Vec::new();
        let mut add_fabric = |tech: hmcs_topology::technology::NetworkTechnology,
                              endpoints: usize,
                              tier: Tier|
         -> TierFabric {
            let hop = sw_lat + m * tech.byte_time_us();
            let fabric = TierFabric::new(
                sys.architecture,
                endpoints,
                ports,
                resources.len(),
                tech.latency_us,
            );
            for cap in fabric.pod_capacities() {
                resources.push(MultiServer::new(cap));
                resource_service_us.push(hop);
                resource_tier.push(tier);
            }
            fabric
        };

        let icn1: Vec<TierFabric> =
            (0..sys.clusters).map(|_| add_fabric(sys.icn1, n0, Tier::Icn1)).collect();
        let ecn1: Vec<TierFabric> =
            (0..sys.clusters).map(|_| add_fabric(sys.ecn1, n0, Tier::Ecn1)).collect();
        let icn2 = add_fabric(sys.icn2, sys.clusters.max(2), Tier::Icn2);

        Ok(PacketModel {
            n0,
            n: sys.total_nodes(),
            icn1,
            ecn1,
            icn2,
            resources,
            resource_service_us,
            resource_tier,
            think_rng: RngStream::new(cfg.seed, 11),
            dest_rng: RngStream::new(cfg.seed, 12),
            msgs: Vec::new(),
            free_ids: Vec::new(),
            delivered: 0,
            latency: OnlineStats::new(),
            internal_latency: OnlineStats::new(),
            external_latency: OnlineStats::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            cfg,
        })
    }

    fn cluster_of(&self, node: usize) -> usize {
        node / self.n0
    }

    fn pick_destination(&mut self, src: usize) -> usize {
        match self.cfg.pattern {
            TrafficPattern::Uniform => self.dest_rng.uniform_excluding(self.n, src),
            TrafficPattern::Localized { locality } => {
                if self.n0 >= 2 && self.dest_rng.bernoulli(locality) {
                    let base = self.cluster_of(src) * self.n0;
                    base + self.dest_rng.uniform_excluding(self.n0, src - base)
                } else {
                    self.dest_rng.uniform_excluding(self.n, src)
                }
            }
            TrafficPattern::Hotspot { node, fraction } => {
                let hot = node.min(self.n - 1);
                if src != hot && self.dest_rng.bernoulli(fraction) {
                    hot
                } else {
                    self.dest_rng.uniform_excluding(self.n, src)
                }
            }
        }
    }

    fn build_itinerary(&self, src: usize, dst: usize) -> Vec<Step> {
        let sc = self.cluster_of(src);
        let dc = self.cluster_of(dst);
        let (sl, dl) = (src - sc * self.n0, dst - dc * self.n0);
        let mut steps = Vec::new();
        if sc == dc {
            let fabric = &self.icn1[sc];
            steps.push(Step::Delay(fabric.injection_us));
            steps.extend(fabric.route(sl, dl).into_iter().map(Step::Queue));
        } else {
            let up = &self.ecn1[sc];
            steps.push(Step::Delay(up.injection_us));
            steps.extend(up.route_up(sl).into_iter().map(Step::Queue));
            steps.push(Step::Delay(self.icn2.injection_us));
            steps.extend(self.icn2.route(sc, dc).into_iter().map(Step::Queue));
            let down = &self.ecn1[dc];
            steps.push(Step::Delay(down.injection_us));
            steps.extend(down.route_down(dl).into_iter().map(Step::Queue));
        }
        steps
    }

    fn alloc_msg(&mut self, msg: Msg) -> MsgId {
        if let Some(id) = self.free_ids.pop() {
            self.msgs[id] = msg;
            id
        } else {
            self.msgs.push(msg);
            self.msgs.len() - 1
        }
    }

    /// Moves `msg` to its next itinerary step (or delivers it).
    fn advance(&mut self, now: SimTime, s: &mut Scheduler<Ev>, id: MsgId) {
        let cursor = self.msgs[id].cursor;
        if cursor >= self.msgs[id].itinerary.len() {
            self.deliver(now, s, id);
            return;
        }
        self.msgs[id].cursor += 1;
        match self.msgs[id].itinerary[cursor] {
            Step::Delay(d) => {
                s.schedule_in(now, SimTime::from_us(d), Ev::Advance { msg: id });
            }
            Step::Queue(r) => {
                if let MultiDirective::Start(_) = self.resources[r].arrive(now.as_us(), id) {
                    let svc = self.resource_service_us[r];
                    s.schedule_in(now, SimTime::from_us(svc), Ev::HopDone { resource: r });
                }
            }
        }
    }

    fn deliver(&mut self, now: SimTime, s: &mut Scheduler<Ev>, id: MsgId) {
        let (src, dst, created) = {
            let m = &self.msgs[id];
            (m.src, m.dst, m.created_us)
        };
        self.free_ids.push(id);
        let latency = now.as_us() - created;
        self.delivered += 1;
        if self.delivered > self.cfg.warmup_messages {
            self.latency.record(latency);
            self.p50.record(latency);
            self.p95.record(latency);
            self.p99.record(latency);
            if self.cluster_of(src) == self.cluster_of(dst) {
                self.internal_latency.record(latency);
            } else {
                self.external_latency.record(latency);
            }
        }
        if self.cfg.blocked_sources {
            let think = self.think_rng.exponential(self.cfg.system.lambda_per_us);
            s.schedule_in(now, SimTime::from_us(think), Ev::Generate { node: src });
        }
    }

    fn measured(&self) -> u64 {
        self.latency.count()
    }
}

impl Model for PacketModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, s: &mut Scheduler<Ev>) {
        match event {
            Ev::Generate { node } => {
                let dst = self.pick_destination(node);
                let itinerary = self.build_itinerary(node, dst);
                let id = self.alloc_msg(Msg {
                    src: node,
                    dst,
                    created_us: now.as_us(),
                    itinerary,
                    cursor: 0,
                });
                self.advance(now, s, id);
                if !self.cfg.blocked_sources {
                    let gap = self.think_rng.exponential(self.cfg.system.lambda_per_us);
                    s.schedule_in(now, SimTime::from_us(gap), Ev::Generate { node });
                }
            }
            Ev::Advance { msg } => self.advance(now, s, msg),
            Ev::HopDone { resource } => {
                // All services at one resource share a deterministic
                // duration, so the longest-serving message is the one
                // completing now (MultiServer::complete's contract).
                let (id, directive) = self.resources[resource].complete(now.as_us());
                if let MultiDirective::Start(_next) = directive {
                    let svc = self.resource_service_us[resource];
                    s.schedule_in(now, SimTime::from_us(svc), Ev::HopDone { resource });
                }
                self.advance(now, s, id);
            }
        }
    }
}

/// The packet-level simulator entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacketSimulator;

impl PacketSimulator {
    /// Runs one packet-level simulation.
    pub fn run(cfg: &SimConfig) -> Result<SimResult, ModelError> {
        let mut engine = Engine::new(PacketModel::new(*cfg)?);
        for node in 0..cfg.system.total_nodes() {
            let think = engine.model_mut().think_rng.exponential(cfg.system.lambda_per_us);
            engine.scheduler_mut().schedule_at(SimTime::from_us(think), Ev::Generate { node });
        }
        let target = cfg.messages;
        engine.run_until(None, None, |m| m.measured() >= target);
        let now = engine.now().as_us();
        // Bridge the engine's local counters into the global registry
        // before the engine is consumed.
        metrics::counter(metrics_keys::PACKET_EVENTS).add(engine.events_processed());
        metrics::histogram(metrics_keys::PACKET_PEAK_PENDING)
            .record(engine.scheduler().peak_pending() as u64);
        let model = engine.into_model();

        let tier_obs = |tier: Tier| -> CenterObservation {
            let idx: Vec<usize> =
                (0..model.resources.len()).filter(|&i| model.resource_tier[i] == tier).collect();
            if idx.is_empty() {
                return CenterObservation::default();
            }
            CenterObservation {
                mean_number_in_system: idx
                    .iter()
                    .map(|&i| model.resources[i].mean_number_in_system(now))
                    .sum::<f64>()
                    / idx.len() as f64,
                utilization: 0.0, // per-switch utilization is not aggregated here
                arrivals: idx.iter().map(|&i| model.resources[i].arrivals()).sum(),
            }
        };

        let measured = model.latency.count();
        Ok(SimResult {
            mean_latency_us: model.latency.mean(),
            latency: model.latency.clone(),
            quantiles: match (model.p50.estimate(), model.p95.estimate(), model.p99.estimate()) {
                (Some(p50_us), Some(p95_us), Some(p99_us)) => {
                    Some(crate::result::LatencyQuantiles { p50_us, p95_us, p99_us })
                }
                _ => None,
            },
            internal_latency: model.internal_latency.clone(),
            external_latency: model.external_latency.clone(),
            messages: measured,
            sim_duration_us: now,
            throughput_per_us: model.delivered as f64 / now,
            effective_lambda_per_us: model.delivered as f64 / now / model.n as f64,
            per_cluster_ecn1_utilization: Vec::new(),
            icn1: tier_obs(Tier::Icn1),
            ecn1: tier_obs(Tier::Ecn1),
            icn2: tier_obs(Tier::Icn2),
        })
    }
}
