//! The packet-level simulator — the high-fidelity member of the
//! paper's "set of simulators".
//!
//! Unlike the flow-level simulator (which, like the analysis, treats
//! each network tier as one abstract server), this simulator walks every
//! message **hop by hop** through explicitly constructed switch fabrics:
//!
//! * the fat-tree is represented by its pods (groups of parallel
//!   switches, see `hmcs_topology::fat_tree`), each a multi-server FCFS
//!   resource with one server per member switch;
//! * the linear array is a chain of single-server switch resources —
//!   contention on the shared middle switches produces head-of-line
//!   blocking *naturally*, with no `(N/2)·M·β` model term;
//! * store-and-forward: each switch holds a message for
//!   `α_sw + M·β` (switch latency plus the full payload transmission);
//!   entering a tier costs the link latency `α` once as a pure delay;
//! * inter-cluster messages ride the source ECN1 fabric *up* to its
//!   root/gateway, cross ICN2 between cluster endpoints, and ride the
//!   destination ECN1 *down*.
//!
//! Because of the per-hop payload retransmission, zero-load latencies
//! sit `(hops−1)·M·β` above eq. 11's cut-through-style accounting; the
//! comparison experiments treat the packet simulator as a *referee of
//! trends*, not of absolute values (EXPERIMENTS.md discusses the
//! offsets).

use crate::config::SimConfig;
use crate::metrics_keys;
use crate::multiserver::{MultiDirective, MultiServer};
use crate::result::{CenterObservation, SimResult};
use hmcs_core::error::ModelError;
use hmcs_core::metrics;
use hmcs_core::routing::TrafficPattern;
use hmcs_des::engine::{Engine, Model, Scheduler};
use hmcs_des::quantile::P2Quantile;
use hmcs_des::rng::{RngStream, UniformInt};
use hmcs_des::stats::OnlineStats;
use hmcs_des::time::SimTime;
use hmcs_topology::transmission::Architecture;

type MsgId = usize;

/// One step of a message's itinerary.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    /// Pure (uncontended) delay, e.g. a link latency α.
    Delay(f64),
    /// Queue at the global resource with this index.
    Queue(usize),
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    src: usize,
    dst: usize,
    created_us: f64,
    /// Number of steps this message's arena slot holds.
    len: u32,
    cursor: u32,
}

/// Which of the three tiers a fabric instance implements (used to
/// aggregate observations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Icn1,
    Ecn1,
    Icn2,
}

/// A switch fabric laid out as globally indexed pod resources.
#[derive(Debug, Clone)]
struct TierFabric {
    arch: Architecture,
    endpoints: usize,
    down_radix: usize,
    ports: usize,
    stages: u32,
    /// Global resource index of this fabric's first pod.
    base: usize,
    /// Local offsets of each stage's first pod (fat-tree only).
    stage_offsets: Vec<usize>,
    /// Pods per stage (fat-tree) or `[k]` (linear array).
    pods_per_stage: Vec<usize>,
    /// Tier entry latency α.
    injection_us: f64,
    /// Precomputed routing table (fat-tree only): the **global**
    /// resource index of endpoint `a`'s pod at stage `s`, flattened as
    /// `pod_path[a * stages + (s - 1)]`. Routes become pure table
    /// reads — no division, no allocation — and the per-message
    /// `route()` walk is reduced to emitting slices of this table.
    pod_path: Vec<u32>,
}

impl TierFabric {
    fn new(
        arch: Architecture,
        endpoints: usize,
        ports: usize,
        base: usize,
        injection_us: f64,
    ) -> Self {
        let down_radix = (ports / 2).max(1);
        match arch {
            Architecture::NonBlocking => {
                // Mirror hmcs-topology's fat-tree structure.
                let stages = {
                    let mut d = 1u32;
                    let mut cap = ports as u128;
                    while cap < endpoints as u128 {
                        d += 1;
                        cap = cap.saturating_mul(down_radix as u128);
                    }
                    d
                };
                let mut pods_per_stage = Vec::new();
                let mut block = down_radix;
                for s in 1..=stages {
                    let pods = if s == stages { 1 } else { endpoints.div_ceil(block) };
                    pods_per_stage.push(pods);
                    block = block.saturating_mul(down_radix);
                }
                let mut stage_offsets = Vec::with_capacity(pods_per_stage.len());
                let mut acc = 0;
                for &p in &pods_per_stage {
                    stage_offsets.push(acc);
                    acc += p;
                }
                let mut fabric = TierFabric {
                    arch,
                    endpoints,
                    down_radix,
                    ports,
                    stages,
                    base,
                    stage_offsets,
                    pods_per_stage,
                    injection_us,
                    pod_path: Vec::new(),
                };
                let mut pod_path = Vec::with_capacity(endpoints * stages as usize);
                for a in 0..endpoints {
                    for s in 1..=stages {
                        pod_path.push((fabric.base + fabric.pod_of(a, s)) as u32);
                    }
                }
                fabric.pod_path = pod_path;
                fabric
            }
            Architecture::Blocking => {
                let k = endpoints.div_ceil(ports);
                TierFabric {
                    arch,
                    endpoints,
                    down_radix,
                    ports,
                    stages: 1,
                    base,
                    stage_offsets: vec![0],
                    pods_per_stage: vec![k],
                    injection_us,
                    // The linear array routes by switch arithmetic; no
                    // table is needed.
                    pod_path: Vec::new(),
                }
            }
        }
    }

    fn pod_count(&self) -> usize {
        self.pods_per_stage.iter().sum()
    }

    /// Capacity (parallel switches) of each pod, in local pod order.
    fn pod_capacities(&self) -> Vec<u32> {
        match self.arch {
            Architecture::Blocking => vec![1; self.pod_count()],
            Architecture::NonBlocking => {
                let mut caps = Vec::with_capacity(self.pod_count());
                let mut block = self.down_radix;
                for (idx, &pods) in self.pods_per_stage.iter().enumerate() {
                    let s = idx + 1;
                    for g in 0..pods {
                        let covered = if s as u32 == self.stages {
                            self.endpoints
                        } else {
                            self.endpoints.min((g + 1) * block).saturating_sub(g * block)
                        };
                        let switches = if s as u32 == self.stages {
                            self.endpoints.div_ceil(self.ports)
                        } else {
                            covered.div_ceil(self.down_radix)
                        };
                        caps.push(switches.max(1) as u32);
                    }
                    block = block.saturating_mul(self.down_radix);
                }
                caps
            }
        }
    }

    /// Local pod id of endpoint `a` at stage `s` (1-based).
    fn pod_of(&self, a: usize, s: u32) -> usize {
        if s == self.stages {
            return self.stage_offsets[s as usize - 1];
        }
        let block = self.down_radix.pow(s);
        self.stage_offsets[s as usize - 1] + a / block
    }

    /// Upper bound on the number of hops `emit_route` can produce.
    fn max_route_len(&self) -> usize {
        match self.arch {
            Architecture::Blocking => self.pods_per_stage[0],
            Architecture::NonBlocking => 2 * self.stages as usize - 1,
        }
    }

    /// Upper bound on the number of hops `emit_route_up` /
    /// `emit_route_down` can produce.
    fn max_leg_len(&self) -> usize {
        match self.arch {
            Architecture::Blocking => self.pods_per_stage[0],
            Architecture::NonBlocking => self.stages as usize,
        }
    }

    /// Emits the full route between two endpoints (global resource
    /// indices, in hop order) from the precomputed tables — the
    /// allocation-free counterpart of [`TierFabric::route`].
    #[inline]
    fn emit_route(&self, a: usize, b: usize, emit: &mut impl FnMut(usize)) {
        debug_assert_ne!(a, b, "routing requires distinct endpoints");
        match self.arch {
            Architecture::Blocking => {
                let sa = a / self.ports;
                let sb = b / self.ports;
                if sa <= sb {
                    for s in sa..=sb {
                        emit(self.base + s);
                    }
                } else {
                    for s in (sb..=sa).rev() {
                        emit(self.base + s);
                    }
                }
            }
            Architecture::NonBlocking => {
                let st = self.stages as usize;
                let pa = &self.pod_path[a * st..(a + 1) * st];
                let pb = &self.pod_path[b * st..(b + 1) * st];
                // Meet stage: lowest stage at which the endpoints share
                // a pod (pods are equal exactly when the endpoints fall
                // in the same stage block).
                let mut meet = st;
                for s in 0..st - 1 {
                    if pa[s] == pb[s] {
                        meet = s + 1;
                        break;
                    }
                }
                for &p in &pa[..meet] {
                    emit(p as usize);
                }
                for &p in pb[..meet - 1].iter().rev() {
                    emit(p as usize);
                }
            }
        }
    }

    /// Emits the route from endpoint `a` up to the fabric's
    /// root/gateway — the allocation-free counterpart of
    /// [`TierFabric::route_up`].
    #[inline]
    fn emit_route_up(&self, a: usize, emit: &mut impl FnMut(usize)) {
        match self.arch {
            Architecture::Blocking => {
                let sa = a / self.ports;
                for s in (0..=sa).rev() {
                    emit(self.base + s);
                }
            }
            Architecture::NonBlocking => {
                let st = self.stages as usize;
                for &p in &self.pod_path[a * st..(a + 1) * st] {
                    emit(p as usize);
                }
            }
        }
    }

    /// Emits the route from the root/gateway down to endpoint `b` —
    /// the allocation-free counterpart of [`TierFabric::route_down`].
    #[inline]
    fn emit_route_down(&self, b: usize, emit: &mut impl FnMut(usize)) {
        match self.arch {
            Architecture::Blocking => {
                let sb = b / self.ports;
                for s in 0..=sb {
                    emit(self.base + s);
                }
            }
            Architecture::NonBlocking => {
                let st = self.stages as usize;
                for &p in self.pod_path[b * st..(b + 1) * st].iter().rev() {
                    emit(p as usize);
                }
            }
        }
    }

    /// Full route between two endpoints (global resource indices).
    ///
    /// Retained as the test oracle for the precomputed-table path
    /// (`emit_route`): the property tests assert both produce identical
    /// hop sequences across fuzzed configurations.
    #[cfg(test)]
    fn route(&self, a: usize, b: usize) -> Vec<usize> {
        assert_ne!(a, b, "routing requires distinct endpoints");
        match self.arch {
            Architecture::Blocking => {
                let sa = a / self.ports;
                let sb = b / self.ports;
                let (lo, hi) = (sa.min(sb), sa.max(sb));
                let mut path: Vec<usize> = (lo..=hi).map(|s| self.base + s).collect();
                if sa > sb {
                    path.reverse();
                }
                path
            }
            Architecture::NonBlocking => {
                // Meet stage: lowest stage at which the endpoints share a
                // pod.
                let mut meet = self.stages;
                let mut block = self.down_radix;
                for s in 1..self.stages {
                    if a / block == b / block {
                        meet = s;
                        break;
                    }
                    block = block.saturating_mul(self.down_radix);
                }
                let mut path = Vec::with_capacity(2 * meet as usize - 1);
                for s in 1..=meet {
                    path.push(self.base + self.pod_of(a, s));
                }
                for s in (1..meet).rev() {
                    path.push(self.base + self.pod_of(b, s));
                }
                path
            }
        }
    }

    /// Route from endpoint `a` up to the fabric's root/gateway
    /// (fat-tree: the root pod; linear array: switch 0). Test oracle
    /// for `emit_route_up`.
    #[cfg(test)]
    fn route_up(&self, a: usize) -> Vec<usize> {
        match self.arch {
            Architecture::Blocking => {
                let sa = a / self.ports;
                (0..=sa).rev().map(|s| self.base + s).collect()
            }
            Architecture::NonBlocking => {
                (1..=self.stages).map(|s| self.base + self.pod_of(a, s)).collect()
            }
        }
    }

    /// Route from the root/gateway down to endpoint `b` (excluding a
    /// repeated root visit is the caller's concern — this includes the
    /// root). Test oracle for `emit_route_down`.
    #[cfg(test)]
    fn route_down(&self, b: usize) -> Vec<usize> {
        let mut up = self.route_up(b);
        up.reverse();
        up
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Generate {
        node: usize,
    },
    /// The message finished a pure-delay step.
    Advance {
        msg: MsgId,
    },
    /// A resource finished its current service.
    HopDone {
        resource: usize,
    },
}

#[derive(Debug)]
struct PacketModel {
    cfg: SimConfig,
    n0: usize,
    n: usize,
    icn1: Vec<TierFabric>,
    ecn1: Vec<TierFabric>,
    icn2: TierFabric,
    resources: Vec<MultiServer<MsgId>>,
    resource_service_us: Vec<f64>,
    resource_tier: Vec<Tier>,
    think_rng: RngStream,
    dest_rng: RngStream,
    /// Precomputed sampler over the `n - 1` non-source destinations.
    dest_any: UniformInt,
    /// Precomputed sampler over the `n0 - 1` non-source cluster-local
    /// destinations (`None` for single-node clusters).
    dest_intra: Option<UniformInt>,
    msgs: Vec<Msg>,
    /// Flat shared itinerary arena: message `id` owns the fixed-stride
    /// slot `steps[id * stride .. id * stride + msgs[id].len]`. Slots
    /// are recycled through `free_ids` together with the message
    /// table, so steady-state message creation allocates nothing.
    steps: Vec<Step>,
    /// Arena slot width: an upper bound (from the fabric shapes) on
    /// any itinerary's step count.
    stride: usize,
    free_ids: Vec<MsgId>,
    delivered: u64,
    latency: OnlineStats,
    internal_latency: OnlineStats,
    external_latency: OnlineStats,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl PacketModel {
    fn new(cfg: SimConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        let sys = cfg.system;
        let n0 = sys.nodes_per_cluster;
        let m = sys.message_bytes as f64;
        let sw_lat = sys.switch.latency_us();
        let ports = sys.switch.ports() as usize;

        let mut resources: Vec<MultiServer<MsgId>> = Vec::new();
        let mut resource_service_us: Vec<f64> = Vec::new();
        let mut resource_tier: Vec<Tier> = Vec::new();
        let mut add_fabric = |tech: hmcs_topology::technology::NetworkTechnology,
                              endpoints: usize,
                              tier: Tier|
         -> TierFabric {
            let hop = sw_lat + m * tech.byte_time_us();
            let fabric = TierFabric::new(
                sys.architecture,
                endpoints,
                ports,
                resources.len(),
                tech.latency_us,
            );
            for cap in fabric.pod_capacities() {
                let mut pod = MultiServer::new(cap);
                pod.set_instrumented(cfg.track_center_stats);
                resources.push(pod);
                resource_service_us.push(hop);
                resource_tier.push(tier);
            }
            fabric
        };

        let icn1: Vec<TierFabric> =
            (0..sys.clusters).map(|_| add_fabric(sys.icn1, n0, Tier::Icn1)).collect();
        let ecn1: Vec<TierFabric> =
            (0..sys.clusters).map(|_| add_fabric(sys.ecn1, n0, Tier::Ecn1)).collect();
        let icn2 = add_fabric(sys.icn2, sys.clusters.max(2), Tier::Icn2);

        // Arena slot width: the longest possible itinerary is either an
        // intra-cluster trip (delay + ICN1 route) or an inter-cluster
        // trip (three delays + ECN1 up + ICN2 route + ECN1 down).
        let intra_max = 1 + icn1[0].max_route_len();
        let inter_max = 3 + 2 * ecn1[0].max_leg_len() + icn2.max_route_len();
        let stride = intra_max.max(inter_max);

        Ok(PacketModel {
            n0,
            n: sys.total_nodes(),
            icn1,
            ecn1,
            icn2,
            resources,
            resource_service_us,
            resource_tier,
            think_rng: RngStream::new(cfg.seed, 11),
            dest_rng: RngStream::new(cfg.seed, 12),
            dest_any: UniformInt::new(sys.total_nodes() - 1),
            dest_intra: (n0 >= 2).then(|| UniformInt::new(n0 - 1)),
            msgs: Vec::new(),
            steps: Vec::new(),
            stride,
            free_ids: Vec::new(),
            delivered: 0,
            latency: OnlineStats::new(),
            internal_latency: OnlineStats::new(),
            external_latency: OnlineStats::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            cfg,
        })
    }

    /// Returns the model to the state `PacketModel::new` would produce
    /// for the same system with `seed`, keeping the expensive parts —
    /// fabrics, routing tables, resource vector, itinerary arena —
    /// allocated. The RNG streams are rebuilt with the same stream
    /// ids, so a reset model replays a fresh model's sample path bit
    /// for bit.
    fn reset(&mut self, seed: u64) {
        self.cfg.seed = seed;
        self.think_rng = RngStream::new(seed, 11);
        self.dest_rng = RngStream::new(seed, 12);
        for r in &mut self.resources {
            r.reset();
        }
        self.msgs.clear();
        // The arena is repopulated alongside `msgs`; clearing keeps its
        // capacity.
        self.steps.clear();
        self.free_ids.clear();
        self.delivered = 0;
        self.latency = OnlineStats::new();
        self.internal_latency = OnlineStats::new();
        self.external_latency = OnlineStats::new();
        self.p50.reset();
        self.p95.reset();
        self.p99.reset();
    }

    fn cluster_of(&self, node: usize) -> usize {
        node / self.n0
    }

    fn pick_destination(&mut self, src: usize) -> usize {
        match self.cfg.pattern {
            TrafficPattern::Uniform => self.dest_any.sample_excluding(&mut self.dest_rng, src),
            TrafficPattern::Localized { locality } => match self.dest_intra {
                Some(intra) if self.dest_rng.bernoulli(locality) => {
                    let base = self.cluster_of(src) * self.n0;
                    base + intra.sample_excluding(&mut self.dest_rng, src - base)
                }
                _ => self.dest_any.sample_excluding(&mut self.dest_rng, src),
            },
            TrafficPattern::Hotspot { node, fraction } => {
                let hot = node.min(self.n - 1);
                if src != hot && self.dest_rng.bernoulli(fraction) {
                    hot
                } else {
                    self.dest_any.sample_excluding(&mut self.dest_rng, src)
                }
            }
        }
    }

    /// Builds a message's itinerary as a fresh `Vec`.
    ///
    /// Retained as the test oracle for the arena path
    /// (`write_itinerary`): the property tests assert both produce
    /// identical step sequences across fuzzed configurations.
    #[cfg(test)]
    fn build_itinerary(&self, src: usize, dst: usize) -> Vec<Step> {
        let sc = self.cluster_of(src);
        let dc = self.cluster_of(dst);
        let (sl, dl) = (src - sc * self.n0, dst - dc * self.n0);
        let mut steps = Vec::new();
        if sc == dc {
            let fabric = &self.icn1[sc];
            steps.push(Step::Delay(fabric.injection_us));
            steps.extend(fabric.route(sl, dl).into_iter().map(Step::Queue));
        } else {
            let up = &self.ecn1[sc];
            steps.push(Step::Delay(up.injection_us));
            steps.extend(up.route_up(sl).into_iter().map(Step::Queue));
            steps.push(Step::Delay(self.icn2.injection_us));
            steps.extend(self.icn2.route(sc, dc).into_iter().map(Step::Queue));
            let down = &self.ecn1[dc];
            steps.push(Step::Delay(down.injection_us));
            steps.extend(down.route_down(dl).into_iter().map(Step::Queue));
        }
        steps
    }

    /// Writes the `src → dst` itinerary into message `id`'s arena slot
    /// from the precomputed routing tables and returns its length.
    fn write_itinerary(&mut self, id: MsgId, src: usize, dst: usize) -> u32 {
        let sc = src / self.n0;
        let dc = dst / self.n0;
        let (sl, dl) = (src - sc * self.n0, dst - dc * self.n0);
        let slot = &mut self.steps[id * self.stride..(id + 1) * self.stride];
        let mut w = 0usize;
        if sc == dc {
            let fabric = &self.icn1[sc];
            slot[w] = Step::Delay(fabric.injection_us);
            w += 1;
            fabric.emit_route(sl, dl, &mut |r| {
                slot[w] = Step::Queue(r);
                w += 1;
            });
        } else {
            let up = &self.ecn1[sc];
            slot[w] = Step::Delay(up.injection_us);
            w += 1;
            up.emit_route_up(sl, &mut |r| {
                slot[w] = Step::Queue(r);
                w += 1;
            });
            slot[w] = Step::Delay(self.icn2.injection_us);
            w += 1;
            self.icn2.emit_route(sc, dc, &mut |r| {
                slot[w] = Step::Queue(r);
                w += 1;
            });
            let down = &self.ecn1[dc];
            slot[w] = Step::Delay(down.injection_us);
            w += 1;
            down.emit_route_down(dl, &mut |r| {
                slot[w] = Step::Queue(r);
                w += 1;
            });
        }
        w as u32
    }

    /// Creates a message (recycling a freed id and its arena slot when
    /// one exists) and writes its itinerary.
    fn alloc_msg(&mut self, src: usize, dst: usize, created_us: f64) -> MsgId {
        let id = match self.free_ids.pop() {
            Some(id) => id,
            None => {
                self.msgs.push(Msg { src: 0, dst: 0, created_us: 0.0, len: 0, cursor: 0 });
                self.steps.resize(self.msgs.len() * self.stride, Step::Delay(0.0));
                self.msgs.len() - 1
            }
        };
        let len = self.write_itinerary(id, src, dst);
        self.msgs[id] = Msg { src, dst, created_us, len, cursor: 0 };
        id
    }

    /// Moves `msg` to its next itinerary step (or delivers it).
    fn advance(&mut self, now: SimTime, s: &mut Scheduler<Ev>, id: MsgId) {
        let m = self.msgs[id];
        if m.cursor >= m.len {
            self.deliver(now, s, id);
            return;
        }
        self.msgs[id].cursor = m.cursor + 1;
        match self.steps[id * self.stride + m.cursor as usize] {
            Step::Delay(d) => {
                s.schedule_in(now, SimTime::from_us(d), Ev::Advance { msg: id });
            }
            Step::Queue(r) => {
                if let MultiDirective::Start(_) = self.resources[r].arrive(now.as_us(), id) {
                    let svc = self.resource_service_us[r];
                    s.schedule_in(now, SimTime::from_us(svc), Ev::HopDone { resource: r });
                }
            }
        }
    }

    fn deliver(&mut self, now: SimTime, s: &mut Scheduler<Ev>, id: MsgId) {
        let (src, dst, created) = {
            let m = &self.msgs[id];
            (m.src, m.dst, m.created_us)
        };
        self.free_ids.push(id);
        let latency = now.as_us() - created;
        self.delivered += 1;
        if self.delivered > self.cfg.warmup_messages {
            self.latency.record(latency);
            if self.cfg.track_quantiles {
                self.p50.record(latency);
                self.p95.record(latency);
                self.p99.record(latency);
            }
            if self.cfg.track_center_stats {
                if self.cluster_of(src) == self.cluster_of(dst) {
                    self.internal_latency.record(latency);
                } else {
                    self.external_latency.record(latency);
                }
            }
        }
        if self.cfg.blocked_sources {
            let think = self.think_rng.exponential(self.cfg.system.lambda_per_us);
            s.schedule_in(now, SimTime::from_us(think), Ev::Generate { node: src });
        }
    }

    fn measured(&self) -> u64 {
        self.latency.count()
    }
}

impl Model for PacketModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, s: &mut Scheduler<Ev>) {
        match event {
            Ev::Generate { node } => {
                let dst = self.pick_destination(node);
                let id = self.alloc_msg(node, dst, now.as_us());
                self.advance(now, s, id);
                if !self.cfg.blocked_sources {
                    let gap = self.think_rng.exponential(self.cfg.system.lambda_per_us);
                    s.schedule_in(now, SimTime::from_us(gap), Ev::Generate { node });
                }
            }
            Ev::Advance { msg } => self.advance(now, s, msg),
            Ev::HopDone { resource } => {
                // All services at one resource share a deterministic
                // duration, so the longest-serving message is the one
                // completing now (MultiServer::complete's contract).
                let (id, directive) = self.resources[resource].complete(now.as_us());
                if let MultiDirective::Start(_next) = directive {
                    let svc = self.resource_service_us[resource];
                    s.schedule_in(now, SimTime::from_us(svc), Ev::HopDone { resource });
                }
                self.advance(now, s, id);
            }
        }
    }
}

/// The packet-level simulator entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacketSimulator;

impl PacketSimulator {
    /// Runs one packet-level simulation.
    pub fn run(cfg: &SimConfig) -> Result<SimResult, ModelError> {
        Ok(PacketSimInstance::new(cfg)?.run(cfg.seed))
    }
}

/// A reusable packet-level simulator: build once per system
/// configuration (paying the fabric and routing-table construction a
/// single time), then [`PacketSimInstance::run`] any number of seeds
/// while every arena keeps its storage warm. Every run is
/// bit-identical to a fresh [`PacketSimulator::run`] of the same
/// configuration and seed.
#[derive(Debug)]
pub struct PacketSimInstance {
    engine: Engine<PacketModel>,
}

impl PacketSimInstance {
    /// Builds the simulator (fabrics, routing tables, resources) for
    /// `cfg`'s system.
    pub fn new(cfg: &SimConfig) -> Result<Self, ModelError> {
        let model = PacketModel::new(*cfg)?;
        // Pending-event bound: one Generate/Advance per source or
        // in-flight message plus at most one HopDone per resource.
        let capacity = model.n + model.resources.len();
        Ok(PacketSimInstance { engine: Engine::with_capacity(model, capacity) })
    }

    /// Runs one replication seeded with `seed` and returns the sink
    /// statistics.
    pub fn run(&mut self, seed: u64) -> SimResult {
        let engine = &mut self.engine;
        engine.reset();
        engine.model_mut().reset(seed);
        let (n, lambda) = (engine.model().n, engine.model().cfg.system.lambda_per_us);
        for node in 0..n {
            let think = engine.model_mut().think_rng.exponential(lambda);
            engine.scheduler_mut().schedule_at(SimTime::from_us(think), Ev::Generate { node });
        }
        let target = engine.model().cfg.messages;
        engine.run_until(None, None, |m| m.measured() >= target);
        let now = engine.now().as_us();
        // Bridge the engine's local counters into the global registry.
        metrics::counter(metrics_keys::PACKET_EVENTS).add(engine.events_processed());
        metrics::histogram(metrics_keys::PACKET_PEAK_PENDING)
            .record(engine.scheduler().peak_pending() as u64);
        Self::collect(engine.model(), now)
    }

    fn collect(model: &PacketModel, now: f64) -> SimResult {
        let tier_obs = |tier: Tier| -> CenterObservation {
            let idx: Vec<usize> =
                (0..model.resources.len()).filter(|&i| model.resource_tier[i] == tier).collect();
            if idx.is_empty() {
                return CenterObservation::default();
            }
            CenterObservation {
                mean_number_in_system: idx
                    .iter()
                    .map(|&i| model.resources[i].mean_number_in_system(now))
                    .sum::<f64>()
                    / idx.len() as f64,
                utilization: 0.0, // per-switch utilization is not aggregated here
                arrivals: idx.iter().map(|&i| model.resources[i].arrivals()).sum(),
            }
        };

        let measured = model.latency.count();
        SimResult {
            mean_latency_us: model.latency.mean(),
            latency: model.latency.clone(),
            quantiles: match (model.p50.estimate(), model.p95.estimate(), model.p99.estimate()) {
                (Some(p50_us), Some(p95_us), Some(p99_us)) => {
                    Some(crate::result::LatencyQuantiles { p50_us, p95_us, p99_us })
                }
                _ => None,
            },
            internal_latency: model.internal_latency.clone(),
            external_latency: model.external_latency.clone(),
            messages: measured,
            sim_duration_us: now,
            throughput_per_us: model.delivered as f64 / now,
            effective_lambda_per_us: model.delivered as f64 / now / model.n as f64,
            per_cluster_ecn1_utilization: Vec::new(),
            icn1: tier_obs(Tier::Icn1),
            ecn1: tier_obs(Tier::Ecn1),
            icn2: tier_obs(Tier::Icn2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::config::SystemConfig;
    use hmcs_core::Scenario;
    use proptest::prelude::*;

    fn model(sys: SystemConfig) -> PacketModel {
        PacketModel::new(SimConfig::new(sys)).expect("valid config")
    }

    /// Reads back the itinerary the arena path wrote for `src → dst`.
    fn arena_itinerary(m: &mut PacketModel, src: usize, dst: usize) -> Vec<Step> {
        let id = m.alloc_msg(src, dst, 0.0);
        let len = m.msgs[id].len as usize;
        assert!(len <= m.stride, "itinerary overflows its arena slot");
        let steps = m.steps[id * m.stride..id * m.stride + len].to_vec();
        m.free_ids.push(id);
        steps
    }

    /// Every (src, dst) pair of a few small systems: the precomputed
    /// tables reproduce the per-message oracle exactly, covering every
    /// fat-tree meet stage and linear-array direction.
    #[test]
    fn tables_match_oracle_exhaustively_on_small_systems() {
        for arch in [Architecture::NonBlocking, Architecture::Blocking] {
            for (c, n0) in [(1usize, 16usize), (4, 8), (8, 2), (2, 32)] {
                let sys = SystemConfig::new(c, n0, 1024, 2.5e-4, Scenario::Case1, arch)
                    .expect("valid shape");
                let mut m = model(sys);
                let n = c * n0;
                for src in 0..n {
                    for dst in 0..n {
                        if src == dst {
                            continue;
                        }
                        let oracle = m.build_itinerary(src, dst);
                        let got = arena_itinerary(&mut m, src, dst);
                        assert_eq!(got, oracle, "src {src} dst {dst} C={c} N0={n0} {arch:?}");
                    }
                }
            }
        }
    }

    /// The reset-reuse contract: one instance run with seeds
    /// s1, s2, s1 must reproduce three fresh builds exactly —
    /// including the repeat of s1, which proves the reset leaks no
    /// state from the s2 run.
    #[test]
    fn reset_reuse_is_bit_identical_to_fresh_builds() {
        let sys = SystemConfig::paper_preset(Scenario::Case1, 4, Architecture::NonBlocking)
            .expect("valid preset");
        let cfg = SimConfig::new(sys).with_messages(600).with_seed(21);
        let fresh_a = PacketSimulator::run(&cfg).unwrap();
        let fresh_b = PacketSimulator::run(&cfg.with_seed(22)).unwrap();
        let mut instance = PacketSimInstance::new(&cfg).unwrap();
        assert_eq!(instance.run(21), fresh_a);
        assert_eq!(instance.run(22), fresh_b);
        assert_eq!(instance.run(21), fresh_a);
    }

    /// Recycled arena slots hold exactly the new message's itinerary —
    /// a shorter itinerary written over a longer one must not expose
    /// stale steps.
    #[test]
    fn recycled_slots_do_not_leak_stale_steps() {
        let sys = SystemConfig::new(4, 8, 1024, 2.5e-4, Scenario::Case1, Architecture::Blocking)
            .expect("valid shape");
        let mut m = model(sys);
        // External message (long itinerary), then an internal one
        // (short) reusing the same id.
        let long = arena_itinerary(&mut m, 0, 31);
        let short = arena_itinerary(&mut m, 0, 1);
        assert!(short.len() < long.len());
        assert_eq!(short, m.build_itinerary(0, 1));
    }

    proptest! {
        /// Fuzzed configs across the 16–512-processor validity region:
        /// the precomputed routing tables yield itineraries identical
        /// to the old per-message `route()`/`build_itinerary` oracle.
        #[test]
        fn precomputed_tables_match_per_message_oracle(
            clusters in 1usize..33,
            n0 in 1usize..65,
            nonblocking in any::<bool>(),
            case1 in any::<bool>(),
            pair_seed in 0u64..u64::MAX,
        ) {
            let total = clusters * n0;
            prop_assume!((16..=512).contains(&total));
            let arch =
                if nonblocking { Architecture::NonBlocking } else { Architecture::Blocking };
            let scenario = if case1 { Scenario::Case1 } else { Scenario::Case2 };
            let sys = SystemConfig::new(clusters, n0, 1024, 2.5e-4, scenario, arch)
                .expect("shapes in the validity region are accepted");
            let mut m = model(sys);
            let mut pairs = RngStream::new(pair_seed, 0);
            for _ in 0..64 {
                let src = pairs.uniform_below(total);
                let dst = pairs.uniform_excluding(total, src);
                let oracle = m.build_itinerary(src, dst);
                let got = arena_itinerary(&mut m, src, dst);
                prop_assert_eq!(got, oracle);
            }
        }
    }
}
