//! Independent replications with confidence intervals.
//!
//! The paper reports single 10,000-message runs; for tighter output
//! analysis this module runs `R` replications with different seeds and
//! summarises the replication means, the textbook method for
//! simulation output analysis. Replications are embarrassingly
//! parallel, but rather than one thread per replication they run on
//! the shared bounded pool ([`hmcs_core::batch`]), so asking for 200
//! replications on a 4-core box spawns 4 workers, not 200 threads.
//! Each replication's seed is fixed by its index, so the summary is
//! deterministic regardless of the worker count.

use crate::config::SimConfig;
use crate::flow::FlowSimInstance;
use crate::metrics_keys;
use crate::packet::PacketSimInstance;
use crate::result::SimResult;
use hmcs_core::batch::{par_map_init, BatchOptions};
use hmcs_core::error::ModelError;
use hmcs_core::metrics;
use hmcs_des::stats::{confidence_interval, OnlineStats};
use std::time::Instant;

/// A named simulation budget: how many messages (and replications,
/// where applicable) validation runs spend per point.
///
/// The paper's budget (10,000 measured messages after 2,000 warm-up)
/// is the default everywhere. CI gates run the same experiments under
/// the reduced [`SimBudget::Ci`] budget so the whole golden-artefact
/// job finishes in minutes; the tolerances in `results/GOLDEN.toml`
/// are calibrated against the extra sampling noise this introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBudget {
    /// The paper's budget: 10,000 measured messages, 2,000 warm-up,
    /// 5 replications where replication is used.
    #[default]
    Paper,
    /// Reduced CI budget: 2,500 measured messages, 500 warm-up,
    /// 3 replications. Sim columns get ~2–8% noisier than under
    /// [`SimBudget::Paper`].
    Ci,
}

/// The concrete run sizes a [`SimBudget`] stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// Independent replications per point.
    pub replications: u32,
    /// Measured messages per replication.
    pub messages: u64,
    /// Warm-up messages discarded per replication.
    pub warmup: u64,
}

impl SimBudget {
    /// Reads `HMCS_SIM_BUDGET` (`paper` | `ci`, case-insensitive;
    /// unset or empty means `paper`). Unknown values fall back to
    /// `paper` with a warn-once note in the metrics registry, so a
    /// typo in a CI workflow degrades to the *more* rigorous budget.
    pub fn from_env() -> SimBudget {
        match std::env::var("HMCS_SIM_BUDGET") {
            Err(_) => SimBudget::Paper,
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" | "paper" | "full" => SimBudget::Paper,
                "ci" | "reduced" => SimBudget::Ci,
                other => {
                    metrics::warn_once(
                        "sim.budget.env",
                        format!("HMCS_SIM_BUDGET={other:?} not recognised; using paper budget"),
                    );
                    SimBudget::Paper
                }
            },
        }
    }

    /// The replication plan for this budget.
    pub fn plan(self) -> ReplicationPlan {
        match self {
            SimBudget::Paper => {
                ReplicationPlan { replications: 5, messages: 10_000, warmup: 2_000 }
            }
            SimBudget::Ci => ReplicationPlan { replications: 3, messages: 2_500, warmup: 500 },
        }
    }

    /// `(messages, warmup)` for single-run (non-replicated)
    /// experiments, e.g. the `reproduce` figure sims.
    pub fn single_run(self) -> (u64, u64) {
        let plan = self.plan();
        (plan.messages, plan.warmup)
    }
}

/// Which simulator to replicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simulator {
    /// The flow-level simulator ([`crate::flow`]).
    Flow,
    /// The packet-level simulator ([`crate::packet`]).
    Packet,
}

/// One worker's reusable simulator instance.
#[derive(Debug)]
enum Instance {
    Flow(FlowSimInstance),
    Packet(PacketSimInstance),
}

impl Instance {
    fn new(base: &SimConfig, simulator: Simulator) -> Result<Self, ModelError> {
        Ok(match simulator {
            Simulator::Flow => Instance::Flow(FlowSimInstance::new(base)?),
            Simulator::Packet => Instance::Packet(PacketSimInstance::new(base)?),
        })
    }

    fn run(&mut self, seed: u64) -> SimResult {
        match self {
            Instance::Flow(i) => i.run(seed),
            Instance::Packet(i) => i.run(seed),
        }
    }
}

/// Summary over independent replications.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Per-replication results, in seed order.
    pub replications: Vec<SimResult>,
    /// Statistics of the replication mean latencies (µs).
    pub latency_means: OnlineStats,
    /// Statistics of the replication effective rates (msg/µs per node).
    pub effective_lambdas: OnlineStats,
}

impl ReplicationSummary {
    /// Grand mean latency across replications (µs).
    pub fn mean_latency_us(&self) -> f64 {
        self.latency_means.mean()
    }

    /// 95% confidence half-width of the grand mean (µs), from the
    /// replication means.
    pub fn latency_ci95_us(&self) -> f64 {
        confidence_interval(&self.latency_means, 0.95)
    }

    /// Grand mean effective per-processor rate.
    pub fn mean_effective_lambda(&self) -> f64 {
        self.effective_lambdas.mean()
    }
}

/// Runs `replications` independent runs of `simulator`, seeding
/// replication `i` with `base.seed + i`, on the shared worker pool.
pub fn run_replications(
    base: &SimConfig,
    simulator: Simulator,
    replications: u32,
) -> Result<ReplicationSummary, ModelError> {
    run_replications_with(base, simulator, replications, BatchOptions::default())
}

/// [`run_replications`] with an explicit worker policy.
pub fn run_replications_with(
    base: &SimConfig,
    simulator: Simulator,
    replications: u32,
    options: BatchOptions,
) -> Result<ReplicationSummary, ModelError> {
    if replications == 0 {
        return Err(ModelError::InvalidConfig {
            name: "replications",
            reason: "need at least one replication",
        });
    }
    base.validate()?;
    metrics::counter(metrics_keys::REPLICATION_BATCHES).incr();
    let seeds: Vec<u64> = (0..replications).map(|i| base.seed.wrapping_add(u64::from(i))).collect();
    // Each worker builds one simulator instance lazily on its first
    // replication and reuses it (via the bit-identical `reset(seed)`
    // path) for every further replication it claims, so fabric and
    // routing-table construction is paid once per worker, not once per
    // replication.
    let results = par_map_init(
        &seeds,
        options.resolved_workers(),
        || None,
        |instance: &mut Option<Instance>, &seed| -> Result<SimResult, ModelError> {
            let started = Instant::now();
            let instance = match instance {
                Some(i) => i,
                None => instance.insert(Instance::new(base, simulator)?),
            };
            let result = instance.run(seed);
            // Wall-clock only: observes the run, never feeds back into
            // it, so the summary stays deterministic in seed order.
            metrics::counter(metrics_keys::REPLICATION_RUNS).incr();
            metrics::histogram(metrics_keys::REPLICATION_WALL_US)
                .record_f64(started.elapsed().as_secs_f64() * 1e6);
            Ok(result)
        },
    );
    let mut replication_results = Vec::with_capacity(replications as usize);
    let mut latency_means = OnlineStats::new();
    let mut effective_lambdas = OnlineStats::new();
    for result in results {
        let result = result?;
        latency_means.record(result.mean_latency_us);
        effective_lambdas.record(result.effective_lambda_per_us);
        replication_results.push(result);
    }
    Ok(ReplicationSummary { replications: replication_results, latency_means, effective_lambdas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::config::SystemConfig;
    use hmcs_core::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn base() -> SimConfig {
        let system =
            SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap();
        SimConfig::new(system).with_messages(800).with_seed(100)
    }

    #[test]
    fn replications_differ_but_agree_statistically() {
        let summary = run_replications(&base(), Simulator::Flow, 4).unwrap();
        assert_eq!(summary.replications.len(), 4);
        // Different seeds produce different sample paths...
        let mean0 = summary.replications[0].mean_latency_us;
        let mean1 = summary.replications[1].mean_latency_us;
        assert_ne!(mean0, mean1);
        // ...but the replication spread is moderate.
        let ci = summary.latency_ci95_us();
        assert!(ci < summary.mean_latency_us(), "CI {ci} vs mean {}", summary.mean_latency_us());
        assert!(summary.mean_effective_lambda() > 0.0);
    }

    #[test]
    fn reused_instances_match_independent_runs_exactly() {
        // The pool reuses one simulator per worker through
        // `reset(seed)`; every replication must still equal a fresh
        // standalone run of the same seed, bit for bit.
        use crate::flow::FlowSimulator;
        use crate::packet::PacketSimulator;
        let base = base();
        for (simulator, n) in [(Simulator::Flow, 3u32), (Simulator::Packet, 2u32)] {
            let summary =
                run_replications_with(&base, simulator, n, BatchOptions::with_workers(2)).unwrap();
            for (i, rep) in summary.replications.iter().enumerate() {
                let cfg = base.with_seed(base.seed.wrapping_add(i as u64));
                let fresh = match simulator {
                    Simulator::Flow => FlowSimulator::run(&cfg).unwrap(),
                    Simulator::Packet => PacketSimulator::run(&cfg).unwrap(),
                };
                assert_eq!(rep, &fresh, "{simulator:?} replication {i}");
            }
        }
    }

    #[test]
    fn replication_summary_is_deterministic() {
        let a = run_replications(&base(), Simulator::Flow, 3).unwrap();
        let b = run_replications(&base(), Simulator::Flow, 3).unwrap();
        assert_eq!(a.mean_latency_us(), b.mean_latency_us());
    }

    #[test]
    fn worker_count_does_not_change_the_summary() {
        // Seeds are fixed by replication index, so the pool size (and
        // hence scheduling order) must not affect any reported number.
        let seq =
            run_replications_with(&base(), Simulator::Flow, 4, BatchOptions::sequential()).unwrap();
        let par = run_replications_with(&base(), Simulator::Flow, 4, BatchOptions::with_workers(4))
            .unwrap();
        assert_eq!(seq.mean_latency_us(), par.mean_latency_us());
        assert_eq!(seq.latency_ci95_us(), par.latency_ci95_us());
        for (a, b) in seq.replications.iter().zip(&par.replications) {
            assert_eq!(a.mean_latency_us, b.mean_latency_us);
            assert_eq!(a.effective_lambda_per_us, b.effective_lambda_per_us);
        }
    }

    #[test]
    fn zero_replications_rejected() {
        assert!(run_replications(&base(), Simulator::Flow, 0).is_err());
    }

    #[test]
    fn budget_presets_are_ordered() {
        let paper = SimBudget::Paper.plan();
        let ci = SimBudget::Ci.plan();
        assert!(ci.messages < paper.messages);
        assert!(ci.warmup < paper.warmup);
        assert!(ci.replications <= paper.replications);
        assert_eq!(SimBudget::Paper.single_run(), (10_000, 2_000));
        assert_eq!(SimBudget::Ci.single_run(), (2_500, 500));
        assert_eq!(SimBudget::default(), SimBudget::Paper);
    }

    #[test]
    fn packet_simulator_replicates_too() {
        let cfg = base().with_messages(300);
        let summary = run_replications(&cfg, Simulator::Packet, 2).unwrap();
        assert_eq!(summary.replications.len(), 2);
        assert!(summary.mean_latency_us() > 0.0);
    }
}
