//! Simulation results: the sink module's output.

use hmcs_des::stats::{confidence_interval, OnlineStats};

/// Streaming latency-quantile estimates (P² algorithm) collected by the
/// sink: medians and tails without storing samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyQuantiles {
    /// Median latency estimate (µs).
    pub p50_us: f64,
    /// 95th-percentile estimate (µs).
    pub p95_us: f64,
    /// 99th-percentile estimate (µs).
    pub p99_us: f64,
}

/// Steady-state observations of one service centre (or centre class)
/// collected during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CenterObservation {
    /// Time-weighted mean number in system.
    pub mean_number_in_system: f64,
    /// Fraction of time busy.
    pub utilization: f64,
    /// Total arrivals seen.
    pub arrivals: u64,
}

/// The output of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Mean measured message latency (µs).
    pub mean_latency_us: f64,
    /// Latency statistics (full accumulator: mean/var/extrema).
    pub latency: OnlineStats,
    /// Streaming latency quantiles (`None` when no messages measured).
    pub quantiles: Option<LatencyQuantiles>,
    /// Latency of intra-cluster messages only.
    pub internal_latency: OnlineStats,
    /// Latency of inter-cluster messages only.
    pub external_latency: OnlineStats,
    /// Measured messages delivered.
    pub messages: u64,
    /// Simulated time elapsed (µs).
    pub sim_duration_us: f64,
    /// Delivered-message throughput (messages/µs) over the run.
    pub throughput_per_us: f64,
    /// Measured effective per-processor generation rate
    /// (throughput / N) — the simulation counterpart of the paper's
    /// λ_eff (eq. 7).
    pub effective_lambda_per_us: f64,
    /// Per-cluster ECN1 utilizations (empty for simulators that do not
    /// expose them). Reveals the asymmetry hotspot traffic creates,
    /// which the averaged observations mask.
    pub per_cluster_ecn1_utilization: Vec<f64>,
    /// Aggregate ICN1 observation (averaged over clusters).
    pub icn1: CenterObservation,
    /// Aggregate ECN1 observation (averaged over clusters).
    pub ecn1: CenterObservation,
    /// ICN2 observation.
    pub icn2: CenterObservation,
}

impl SimResult {
    /// Fraction of measured messages that were external.
    pub fn external_fraction(&self) -> f64 {
        if self.latency.count() == 0 {
            0.0
        } else {
            self.external_latency.count() as f64 / self.latency.count() as f64
        }
    }

    /// 95% confidence half-width of the mean latency (normal
    /// approximation — adequate at the paper's 10,000-message runs).
    pub fn latency_ci95_us(&self) -> f64 {
        confidence_interval(&self.latency, 0.95)
    }

    /// Mean latency in milliseconds (figure unit).
    pub fn mean_latency_ms(&self) -> f64 {
        self.mean_latency_us / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(internal: u64, external: u64) -> SimResult {
        let mut latency = OnlineStats::new();
        let mut int = OnlineStats::new();
        let mut ext = OnlineStats::new();
        for i in 0..internal {
            let v = 100.0 + i as f64;
            latency.record(v);
            int.record(v);
        }
        for i in 0..external {
            let v = 500.0 + i as f64;
            latency.record(v);
            ext.record(v);
        }
        SimResult {
            mean_latency_us: latency.mean(),
            latency,
            quantiles: None,
            internal_latency: int,
            external_latency: ext,
            messages: internal + external,
            sim_duration_us: 1e6,
            throughput_per_us: (internal + external) as f64 / 1e6,
            effective_lambda_per_us: (internal + external) as f64 / 1e6 / 256.0,
            per_cluster_ecn1_utilization: Vec::new(),
            icn1: CenterObservation::default(),
            ecn1: CenterObservation::default(),
            icn2: CenterObservation::default(),
        }
    }

    #[test]
    fn external_fraction_counts_classes() {
        let r = result_with(30, 70);
        assert!((r.external_fraction() - 0.7).abs() < 1e-12);
        let empty = result_with(0, 0);
        assert_eq!(empty.external_fraction(), 0.0);
    }

    #[test]
    fn ci_and_unit_helpers() {
        let r = result_with(50, 50);
        assert!(r.latency_ci95_us() > 0.0);
        assert!((r.mean_latency_ms() * 1e3 - r.mean_latency_us).abs() < 1e-9);
    }
}
