//! Per-cluster sharded flow simulation for 10k–100k-node systems.
//!
//! A monolithic [`crate::flow`] run of a 100k-node system carries every
//! node's pending Generate event in one future-event list; wall clock
//! and memory both scale with the whole machine. This module cuts the
//! system along the identified cluster boundaries instead: **one shard
//! simulates one cluster exactly** — its sources, its ICN1 and its ECN1
//! — together with a *private copy of the global ICN2* whose extra load
//! from all the other clusters is injected as a Poisson background
//! stream. Shards then run embarrassingly parallel on the shared
//! bounded pool (`hmcs_core::batch::par_map_init`), exactly like
//! replications.
//!
//! ## The decomposition
//!
//! * **Local traffic is exact.** Every message generated inside the
//!   shard is simulated end to end: source blocking, ICN1 queueing for
//!   internal messages, the ECN1 → ICN2 → ECN1 three-centre path for
//!   external ones.
//! * **The feedback leg uses the local ECN1 as a proxy** for the remote
//!   destination's ECN1. Under the HMCS symmetry the remote ECN1 is
//!   statistically identical, and routing the feedback locally makes
//!   the local ECN1's arrival rate *exactly* right (forward + feedback
//!   = `2·n_c·P_c·λ_eff`) without any ECN1 background process.
//! * **ICN2 background.** The only cross-shard coupling in the paper's
//!   model is the shared ICN2. Each shard's private ICN2 receives, on
//!   top of the exactly-simulated local external stream, background
//!   arrivals at rate `Σ_{j≠c} n_j·P_j·λ_bg` — the superposition of
//!   many independent sparse streams, which Palm–Khintchine makes
//!   near-Poisson in the many-cluster limit. Background jobs occupy
//!   the server and vanish (counted as boundary-in messages; local
//!   externals crossing the ICN2 are boundary-out).
//! * **Throttling fixed point.** Blocked sources make the background
//!   rate depend on the very congestion it creates, so the driver
//!   iterates: pass 1 uses the nominal λ as `λ_bg`, measures the grand
//!   mean effective rate across shards, and pass 2 (default; see
//!   [`ShardOptions::iterations`]) re-runs with the measured value.
//!   This keeps the sharded simulator self-contained — it never reads
//!   the analytical solver, so validating analysis against it stays a
//!   genuine differential test.
//!
//! Per-shard cost scales with the *cluster* (N₀ pending events, one
//! cluster's messages), so a 100k-node system with 32 clusters costs
//! about as much as 32 independent 3k-node runs — embarrassing
//! parallelism the pool exploits.
//!
//! When a [`LatencySource`] accompanies the partition (the
//! latency-matrix pipeline), per-pair residual heterogeneity feeds the
//! shard directly: an internal message's ICN1 service mean is offset by
//! `α(src,dst) − intra_centre` and an external message's ICN2 service
//! mean by `α(src,dst) − inter_centre`, so the simulator consumes the
//! *measured matrix*, not just the fitted two-level abstraction of it.

use crate::config::SimConfig;
use crate::metrics_keys;
use hmcs_core::batch::{par_map_init, BatchOptions};
use hmcs_core::config::ServiceTimeModel;
use hmcs_core::error::ModelError;
use hmcs_core::metrics;
use hmcs_core::service::ServiceTimes;
use hmcs_des::engine::{Engine, Model, Scheduler};
use hmcs_des::queue::{FcfsServer, ServiceDirective};
use hmcs_des::rng::{RngStream, UniformInt};
use hmcs_des::stats::{confidence_interval, OnlineStats};
use hmcs_des::time::SimTime;
use hmcs_topology::latmatrix::{LatencyMatrix, LatencySource};
use std::time::Instant;

/// Message identifier; [`BG_ID`] marks background ICN2 jobs.
type MsgId = usize;

/// Sentinel id for background ICN2 jobs injected by other shards' load.
const BG_ID: MsgId = usize::MAX;

/// Seed stride between background fixed-point iterations, so pass 2
/// replays none of pass 1's randomness.
const ITERATION_SEED_STRIDE: u64 = 1_000_003;

/// Ceiling on the ICN2 utilization the background stream may offer.
///
/// The background is an *open* Poisson stream, so unlike the closed
/// sources it simulates it would not throttle itself: at the paper's
/// nominal λ the ICN2 saturates and an uncapped pass-1 background
/// would grow the ICN2 queue without bound (the run never completes).
/// A closed system can never sustain more than the saturation
/// throughput, so capping the background's offered rate at this
/// utilization is faithful — the fixed point then pulls the rate down
/// to the measured effective value.
const BG_STABILITY_LIMIT: f64 = 0.9;

/// Per-pair service-mean modulation from a latency matrix.
///
/// `centre` values are subtracted so a perfectly two-level matrix
/// reproduces the fitted means exactly; only the *residual*
/// heterogeneity perturbs the shard.
#[derive(Debug)]
pub struct HopDelays<'a, S: ?Sized> {
    /// The matrix (or implicit source) to sample per-pair latencies from.
    pub source: &'a S,
    /// Centre of the intra-cluster band (µs), usually the identified
    /// intra median.
    pub intra_centre_us: f64,
    /// Centre of the inter-cluster band (µs), usually the identified
    /// inter median.
    pub inter_centre_us: f64,
}

impl<S: ?Sized> Clone for HopDelays<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: ?Sized> Copy for HopDelays<'_, S> {}

/// Driver options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOptions {
    /// Background fixed-point passes (≥ 1). The default 2 runs one
    /// nominal-rate pass to measure throttling, then the reported pass
    /// at the measured background rate.
    pub iterations: u32,
    /// Worker policy for the shard batch.
    pub batch: BatchOptions,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions { iterations: 2, batch: BatchOptions::default() }
    }
}

/// One shard's outcome (final fixed-point pass).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRun {
    /// Cluster index in the partition.
    pub cluster: usize,
    /// Nodes simulated by this shard.
    pub nodes: usize,
    /// Mean measured message latency (µs).
    pub mean_latency_us: f64,
    /// Measured messages.
    pub messages: u64,
    /// Per-node effective generation rate (msg/µs).
    pub effective_lambda_per_us: f64,
    /// Background ICN2 jobs absorbed (load entering from other shards).
    pub boundary_in: u64,
    /// Local external messages that crossed the ICN2 (load leaving).
    pub boundary_out: u64,
    /// Simulated time span (µs).
    pub sim_duration_us: f64,
    /// Local ICN2 utilization (0 when centre stats are off).
    pub icn2_utilization: f64,
    /// Wall-clock time this shard's simulation took (µs).
    pub wall_us: f64,
}

/// Aggregate over all shards of the final fixed-point pass.
#[derive(Debug, Clone)]
pub struct ShardedSummary {
    /// Per-shard outcomes, in cluster order.
    pub shards: Vec<ShardRun>,
    /// Fixed-point passes run.
    pub iterations: u32,
    /// Background per-node rate used in the reported pass (msg/µs).
    pub background_lambda_per_us: f64,
    latency_means: OnlineStats,
}

impl ShardedSummary {
    /// Throughput-weighted grand mean message latency (µs): shard means
    /// weighted by their delivered-message rate `n_c · λ_eff,c`, which
    /// is how the monolithic simulator's sink would weight them.
    pub fn mean_latency_us(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for s in &self.shards {
            let w = s.nodes as f64 * s.effective_lambda_per_us;
            num += w * s.mean_latency_us;
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// 95% confidence half-width from the spread of (independent)
    /// shard means, µs. Unweighted, which is exact for equal-size
    /// clusters and conservative otherwise.
    pub fn latency_ci95_us(&self) -> f64 {
        confidence_interval(&self.latency_means, 0.95)
    }

    /// Node-weighted grand mean effective per-node rate (msg/µs).
    pub fn mean_effective_lambda(&self) -> f64 {
        let nodes: usize = self.shards.iter().map(|s| s.nodes).sum();
        let total: f64 =
            self.shards.iter().map(|s| s.nodes as f64 * s.effective_lambda_per_us).sum();
        total / nodes as f64
    }

    /// Total boundary messages (in, out) across shards.
    pub fn boundary_totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(i, o), s| (i + s.boundary_in, o + s.boundary_out))
    }

    /// Total measured messages across shards.
    pub fn total_messages(&self) -> u64 {
        self.shards.iter().map(|s| s.messages).sum()
    }
}

// ---------------------------------------------------------------------------
// The single-cluster shard model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Icn1,
    Ecn1Forward,
    Icn2,
    Ecn1Feedback,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    /// Local index of the (always local) source.
    src_local: u32,
    created_us: f64,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Generate { local: usize },
    Icn1Done,
    Ecn1Done,
    Icn2Done,
    BgArrive,
}

struct ShardModel<'a, S: ?Sized> {
    cfg: SimConfig,
    /// Total nodes in the *system* (not the shard).
    n: usize,
    /// Global ids of this shard's nodes.
    members: Vec<usize>,
    /// `is_local[g]` — membership bitmap over global ids.
    is_local: Vec<bool>,
    means: ServiceTimes,
    bg_rate_per_us: f64,
    hop: Option<HopDelays<'a, S>>,
    think_rng: RngStream,
    dest_rng: RngStream,
    svc_rng: RngStream,
    bg_rng: RngStream,
    dest_any: UniformInt,
    icn1: FcfsServer<MsgId>,
    ecn1: FcfsServer<MsgId>,
    icn2: FcfsServer<MsgId>,
    msgs: Vec<Msg>,
    /// Per-message ICN1/ICN2 mean offset (µs), indexed like `msgs`;
    /// 0 without a hop source.
    hop_offset: Vec<f64>,
    free_ids: Vec<MsgId>,
    delivered: u64,
    boundary_in: u64,
    boundary_out: u64,
    latency: OnlineStats,
}

impl<S: LatencySource + ?Sized> ShardModel<'_, S> {
    fn sample_service(&mut self, mean_us: f64) -> f64 {
        match self.cfg.system.service_model {
            ServiceTimeModel::Exponential => self.svc_rng.exponential_mean(mean_us),
            ServiceTimeModel::Deterministic => mean_us,
            ServiceTimeModel::Erlang(k) => self.svc_rng.erlang(mean_us, k),
            ServiceTimeModel::HyperExponential(scv) => self.svc_rng.hyper_exponential(mean_us, scv),
        }
    }

    fn alloc_msg(&mut self, msg: Msg, offset: f64) -> MsgId {
        if let Some(id) = self.free_ids.pop() {
            self.msgs[id] = msg;
            self.hop_offset[id] = offset;
            id
        } else {
            self.msgs.push(msg);
            self.hop_offset.push(offset);
            self.msgs.len() - 1
        }
    }

    /// Mean ICN1 service time for a specific internal message: the
    /// fitted mean plus the pair's residual offset, floored at 5% of
    /// the fitted mean so a pathological matrix cannot produce
    /// non-positive service times.
    fn icn1_mean_for(&self, id: MsgId) -> f64 {
        let base = self.means.icn1_us;
        (base + self.hop_offset[id]).max(0.05 * base)
    }

    /// Mean ICN2 service time for a job; background jobs use the
    /// fitted mean.
    fn icn2_mean_for(&self, id: MsgId) -> f64 {
        let base = self.means.icn2_us;
        if id == BG_ID {
            return base;
        }
        (base + self.hop_offset[id]).max(0.05 * base)
    }

    fn schedule_done(&mut self, now: SimTime, s: &mut Scheduler<Ev>, ev: Ev, mean_us: f64) {
        let svc = self.sample_service(mean_us);
        s.schedule_in(now, SimTime::from_us(svc), ev);
    }

    fn deliver(&mut self, now: SimTime, s: &mut Scheduler<Ev>, id: MsgId) {
        let msg = self.msgs[id];
        self.free_ids.push(id);
        let latency = now.as_us() - msg.created_us;
        self.delivered += 1;
        if self.delivered > self.cfg.warmup_messages {
            self.latency.record(latency);
        }
        if self.cfg.blocked_sources {
            let think = self.think_rng.exponential(self.cfg.system.lambda_per_us);
            s.schedule_in(
                now,
                SimTime::from_us(think),
                Ev::Generate { local: msg.src_local as usize },
            );
        }
    }

    fn measured(&self) -> u64 {
        self.latency.count()
    }
}

impl<S: LatencySource + ?Sized> Model for ShardModel<'_, S> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, s: &mut Scheduler<Ev>) {
        match event {
            Ev::Generate { local } => {
                let src_global = self.members[local];
                let dst = self.dest_any.sample_excluding(&mut self.dest_rng, src_global);
                let external = !self.is_local[dst];
                let stage = if external { Stage::Ecn1Forward } else { Stage::Icn1 };
                // Residual per-pair offset against the fitted band
                // centre (0 without a matrix): applied at the ICN1 for
                // internal messages, at the ICN2 (the WAN leg) for
                // external ones.
                let offset = match &self.hop {
                    Some(h) => {
                        let alpha = h.source.latency_us(src_global, dst);
                        if external {
                            alpha - h.inter_centre_us
                        } else {
                            alpha - h.intra_centre_us
                        }
                    }
                    None => 0.0,
                };
                let id = self.alloc_msg(
                    Msg { src_local: local as u32, created_us: now.as_us(), stage },
                    offset,
                );
                if external {
                    if let ServiceDirective::StartService(_) = self.ecn1.arrive(now.as_us(), id) {
                        let mean = self.means.ecn1_us;
                        self.schedule_done(now, s, Ev::Ecn1Done, mean);
                    }
                } else if let ServiceDirective::StartService(_) = self.icn1.arrive(now.as_us(), id)
                {
                    let mean = self.icn1_mean_for(id);
                    self.schedule_done(now, s, Ev::Icn1Done, mean);
                }
                if !self.cfg.blocked_sources {
                    let gap = self.think_rng.exponential(self.cfg.system.lambda_per_us);
                    s.schedule_in(now, SimTime::from_us(gap), Ev::Generate { local });
                }
            }
            Ev::Icn1Done => {
                let (id, directive) = self.icn1.complete(now.as_us());
                debug_assert_eq!(self.msgs[id].stage, Stage::Icn1);
                self.deliver(now, s, id);
                if let ServiceDirective::StartService(next) = directive {
                    let mean = self.icn1_mean_for(next);
                    self.schedule_done(now, s, Ev::Icn1Done, mean);
                }
            }
            Ev::Ecn1Done => {
                let (id, directive) = self.ecn1.complete(now.as_us());
                match self.msgs[id].stage {
                    Stage::Ecn1Forward => {
                        self.msgs[id].stage = Stage::Icn2;
                        if let ServiceDirective::StartService(started) =
                            self.icn2.arrive(now.as_us(), id)
                        {
                            let mean = self.icn2_mean_for(started);
                            self.schedule_done(now, s, Ev::Icn2Done, mean);
                        }
                    }
                    Stage::Ecn1Feedback => self.deliver(now, s, id),
                    other => unreachable!("message in ECN1 with stage {other:?}"),
                }
                if let ServiceDirective::StartService(_) = directive {
                    let mean = self.means.ecn1_us;
                    self.schedule_done(now, s, Ev::Ecn1Done, mean);
                }
            }
            Ev::Icn2Done => {
                let (id, directive) = self.icn2.complete(now.as_us());
                if id == BG_ID {
                    // A background job: other shards' load, absorbed.
                    self.boundary_in += 1;
                } else {
                    debug_assert_eq!(self.msgs[id].stage, Stage::Icn2);
                    // The message now crosses to the destination
                    // cluster; its feedback leg queues at the local
                    // ECN1 as the remote ECN1's statistical proxy.
                    self.boundary_out += 1;
                    self.msgs[id].stage = Stage::Ecn1Feedback;
                    if let ServiceDirective::StartService(_) = self.ecn1.arrive(now.as_us(), id) {
                        let mean = self.means.ecn1_us;
                        self.schedule_done(now, s, Ev::Ecn1Done, mean);
                    }
                }
                if let ServiceDirective::StartService(next) = directive {
                    let mean = self.icn2_mean_for(next);
                    self.schedule_done(now, s, Ev::Icn2Done, mean);
                }
            }
            Ev::BgArrive => {
                if let ServiceDirective::StartService(started) =
                    self.icn2.arrive(now.as_us(), BG_ID)
                {
                    let mean = self.icn2_mean_for(started);
                    self.schedule_done(now, s, Ev::Icn2Done, mean);
                }
                let gap = self.bg_rng.exponential(self.bg_rate_per_us);
                s.schedule_in(now, SimTime::from_us(gap), Ev::BgArrive);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Instance + driver
// ---------------------------------------------------------------------------

/// A reusable shard simulator bound to one system configuration and
/// partition; `run` simulates any shard with any seed, keeping the
/// engine's and model's allocations warm between shards.
struct ShardSimInstance<'a, S: LatencySource + ?Sized> {
    engine: Engine<ShardModel<'a, S>>,
    partition: &'a [Vec<usize>],
}

impl<'a, S: LatencySource + ?Sized> ShardSimInstance<'a, S> {
    fn new(
        cfg: &SimConfig,
        partition: &'a [Vec<usize>],
        hop: Option<HopDelays<'a, S>>,
    ) -> Result<Self, ModelError> {
        let means = ServiceTimes::compute(&cfg.system)?;
        let n: usize = partition.iter().map(Vec::len).sum();
        let max_nc = partition.iter().map(Vec::len).max().unwrap_or(0);
        let mut icn1 = FcfsServer::new();
        let mut ecn1 = FcfsServer::new();
        let mut icn2 = FcfsServer::new();
        icn1.set_instrumented(cfg.track_center_stats);
        ecn1.set_instrumented(cfg.track_center_stats);
        icn2.set_instrumented(cfg.track_center_stats);
        let model = ShardModel {
            cfg: *cfg,
            n,
            members: Vec::with_capacity(max_nc),
            is_local: vec![false; n],
            means,
            bg_rate_per_us: 0.0,
            hop,
            think_rng: RngStream::new(cfg.seed, 1),
            dest_rng: RngStream::new(cfg.seed, 2),
            svc_rng: RngStream::new(cfg.seed, 3),
            bg_rng: RngStream::new(cfg.seed, 4),
            dest_any: UniformInt::new(n - 1),
            icn1,
            ecn1,
            icn2,
            msgs: Vec::new(),
            hop_offset: Vec::new(),
            free_ids: Vec::new(),
            delivered: 0,
            boundary_in: 0,
            boundary_out: 0,
            latency: OnlineStats::new(),
        };
        // Pending-event bound: one Generate per local source, one Done
        // per local server (ICN1/ECN1/ICN2), one pending background
        // arrival.
        let capacity = max_nc + 4;
        Ok(ShardSimInstance { engine: Engine::with_capacity(model, capacity), partition })
    }

    /// Simulates one shard, bit-identically reproducible from
    /// `(shard, seed, bg_lambda)` regardless of instance reuse.
    fn run(&mut self, shard: usize, seed: u64, bg_lambda_per_us: f64) -> ShardRun {
        let engine = &mut self.engine;
        engine.reset();
        let model = engine.model_mut();
        // Reset per-shard state, keeping allocations warm.
        for i in 0..model.members.len() {
            let g = model.members[i];
            model.is_local[g] = false;
        }
        model.members.clear();
        model.members.extend_from_slice(&self.partition[shard]);
        for i in 0..model.members.len() {
            let g = model.members[i];
            model.is_local[g] = true;
        }
        model.cfg.seed = seed;
        model.think_rng = RngStream::new(seed, 1);
        model.dest_rng = RngStream::new(seed, 2);
        model.svc_rng = RngStream::new(seed, 3);
        model.bg_rng = RngStream::new(seed, 4);
        model.icn1.reset();
        model.ecn1.reset();
        model.icn2.reset();
        model.msgs.clear();
        model.hop_offset.clear();
        model.free_ids.clear();
        model.delivered = 0;
        model.boundary_in = 0;
        model.boundary_out = 0;
        model.latency = OnlineStats::new();
        // Background rate: Σ over *other* clusters of n_j·P_j·λ_bg,
        // where P_j = (n − n_j)/(n − 1) is cluster j's external
        // probability under uniform destinations.
        let n = model.n as f64;
        let mut bg_rate = 0.0;
        for (j, members) in self.partition.iter().enumerate() {
            if j != shard {
                let nj = members.len() as f64;
                bg_rate += nj * ((n - nj) / (n - 1.0)) * bg_lambda_per_us;
            }
        }
        model.bg_rate_per_us = bg_rate;
        let n_local = model.members.len();
        let lambda = model.cfg.system.lambda_per_us;
        for local in 0..n_local {
            let think = engine.model_mut().think_rng.exponential(lambda);
            engine.scheduler_mut().schedule_at(SimTime::from_us(think), Ev::Generate { local });
        }
        if bg_rate > 0.0 {
            let first = engine.model_mut().bg_rng.exponential(bg_rate);
            engine.scheduler_mut().schedule_at(SimTime::from_us(first), Ev::BgArrive);
        }
        let target = engine.model().cfg.messages;
        engine.run_until(None, None, |m| m.measured() >= target);
        let now = engine.now().as_us();
        let model = engine.model();
        ShardRun {
            cluster: shard,
            nodes: n_local,
            mean_latency_us: model.latency.mean(),
            messages: model.latency.count(),
            effective_lambda_per_us: model.delivered as f64 / now / n_local as f64,
            boundary_in: model.boundary_in,
            boundary_out: model.boundary_out,
            sim_duration_us: now,
            icn2_utilization: model.icn2.utilization(now),
            wall_us: 0.0,
        }
    }
}

/// Runs the sharded simulator without per-pair matrix modulation.
pub fn run_sharded(
    cfg: &SimConfig,
    partition: &[Vec<usize>],
    options: &ShardOptions,
) -> Result<ShardedSummary, ModelError> {
    run_sharded_with::<LatencyMatrix>(cfg, partition, None, options)
}

/// Runs the sharded simulator: one shard per partition cluster, over
/// [`ShardOptions::iterations`] background fixed-point passes, on the
/// shared worker pool. Deterministic in `(cfg.seed, partition)`
/// regardless of worker count.
///
/// # Errors
///
/// `InvalidConfig` when the partition does not cover the configured
/// system (wrong cluster count, node not covered exactly once) or the
/// hop source disagrees with the node count.
pub fn run_sharded_with<S: LatencySource + Sync + ?Sized>(
    cfg: &SimConfig,
    partition: &[Vec<usize>],
    hop: Option<HopDelays<'_, S>>,
    options: &ShardOptions,
) -> Result<ShardedSummary, ModelError> {
    cfg.validate()?;
    validate_partition(cfg, partition)?;
    if let Some(h) = &hop {
        if h.source.nodes() != cfg.system.total_nodes() {
            return Err(ModelError::InvalidConfig {
                name: "hop.source",
                reason: "latency source node count must match the system",
            });
        }
        // NaN centres must be rejected too, hence not `<= 0.0`.
        if !(h.intra_centre_us > 0.0 && h.inter_centre_us > 0.0) {
            return Err(ModelError::InvalidConfig {
                name: "hop.centre",
                reason: "band centres must be positive",
            });
        }
    }
    let iterations = options.iterations.max(1);
    let shards: Vec<usize> = (0..partition.len()).collect();
    let workers = options.batch.resolved_workers();
    // Per-node rate above which the *total* external stream (all
    // clusters) would push the ICN2 past [`BG_STABILITY_LIMIT`]:
    // Σ_j n_j·P_j·λ·s_icn2 = limit. Background rates are clamped here
    // so every pass terminates even for saturated systems.
    let icn2_us = ServiceTimes::compute(&cfg.system)?.icn2_us;
    let n = cfg.system.total_nodes() as f64;
    let icn2_load_per_lambda: f64 = partition
        .iter()
        .map(|members| {
            let nj = members.len() as f64;
            nj * ((n - nj) / (n - 1.0)) * icn2_us
        })
        .sum();
    let bg_cap = if icn2_load_per_lambda > 0.0 {
        BG_STABILITY_LIMIT / icn2_load_per_lambda
    } else {
        f64::INFINITY
    };
    let mut bg_lambda = cfg.system.lambda_per_us.min(bg_cap);
    let mut final_runs: Vec<ShardRun> = Vec::new();
    for iter in 0..iterations {
        let iter_seed = cfg.seed.wrapping_add(ITERATION_SEED_STRIDE.wrapping_mul(u64::from(iter)));
        let bg = bg_lambda;
        let results = par_map_init(
            &shards,
            workers,
            || None,
            |instance: &mut Option<ShardSimInstance<'_, S>>,
             &shard|
             -> Result<ShardRun, ModelError> {
                let started = Instant::now();
                let instance = match instance {
                    Some(i) => i,
                    None => instance.insert(ShardSimInstance::new(cfg, partition, hop)?),
                };
                let mut run = instance.run(shard, iter_seed.wrapping_add(shard as u64), bg);
                run.wall_us = started.elapsed().as_secs_f64() * 1e6;
                // Observational only: never feeds back into the run, so
                // the summary stays deterministic in shard order.
                metrics::counter(metrics_keys::SHARD_RUNS).incr();
                metrics::counter(metrics_keys::SHARD_BOUNDARY_IN).add(run.boundary_in);
                metrics::counter(metrics_keys::SHARD_BOUNDARY_OUT).add(run.boundary_out);
                metrics::histogram(metrics_keys::SHARD_BUSY_US).record_f64(run.wall_us);
                metrics::histogram(metrics_keys::SHARD_IDLE_US)
                    .record_f64(run.sim_duration_us * (1.0 - run.icn2_utilization));
                Ok(run)
            },
        );
        let mut runs = Vec::with_capacity(partition.len());
        for r in results {
            runs.push(r?);
        }
        // Grand mean effective rate feeds the next pass's background.
        let nodes: usize = runs.iter().map(|r| r.nodes).sum();
        let measured_lambda =
            runs.iter().map(|r| r.nodes as f64 * r.effective_lambda_per_us).sum::<f64>()
                / nodes as f64;
        final_runs = runs;
        if iter + 1 < iterations {
            bg_lambda = measured_lambda.min(bg_cap);
        }
    }
    let mut latency_means = OnlineStats::new();
    for r in &final_runs {
        latency_means.record(r.mean_latency_us);
    }
    Ok(ShardedSummary {
        shards: final_runs,
        iterations,
        background_lambda_per_us: bg_lambda,
        latency_means,
    })
}

fn validate_partition(cfg: &SimConfig, partition: &[Vec<usize>]) -> Result<(), ModelError> {
    if partition.len() != cfg.system.clusters {
        return Err(ModelError::InvalidConfig {
            name: "partition",
            reason: "cluster count must match the configured system",
        });
    }
    let n = cfg.system.total_nodes();
    let covered: usize = partition.iter().map(Vec::len).sum();
    if covered != n {
        return Err(ModelError::InvalidConfig {
            name: "partition",
            reason: "partition must cover exactly the configured nodes",
        });
    }
    let mut seen = vec![false; n];
    for members in partition {
        if members.is_empty() {
            return Err(ModelError::InvalidConfig {
                name: "partition",
                reason: "clusters must be non-empty",
            });
        }
        for &m in members {
            if m >= n || seen[m] {
                return Err(ModelError::InvalidConfig {
                    name: "partition",
                    reason: "every node must appear exactly once",
                });
            }
            seen[m] = true;
        }
    }
    Ok(())
}

/// Builds the uniform block partition (`cluster c` owns nodes
/// `c·N₀ .. (c+1)·N₀`) matching the monolithic simulator's layout.
pub fn uniform_partition(clusters: usize, nodes_per_cluster: usize) -> Vec<Vec<usize>> {
    (0..clusters).map(|c| (c * nodes_per_cluster..(c + 1) * nodes_per_cluster).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSimulator;
    use hmcs_core::config::SystemConfig;
    use hmcs_core::scenario::Scenario;
    use hmcs_topology::latmatrix::{LatencyBand, SyntheticSpec};
    use hmcs_topology::transmission::Architecture;

    fn system(clusters: usize, nodes: usize) -> SystemConfig {
        SystemConfig::new(
            clusters,
            nodes,
            1024,
            hmcs_core::scenario::PAPER_LAMBDA_PER_US,
            Scenario::Case1,
            Architecture::NonBlocking,
        )
        .unwrap()
    }

    fn cfg(clusters: usize, nodes: usize) -> SimConfig {
        SimConfig::new(system(clusters, nodes)).with_messages(1_500).with_warmup(300).with_seed(9)
    }

    #[test]
    fn sharded_run_is_deterministic_and_worker_invariant() {
        let cfg = cfg(4, 16);
        let partition = uniform_partition(4, 16);
        let seq = run_sharded(
            &cfg,
            &partition,
            &ShardOptions { iterations: 2, batch: BatchOptions::sequential() },
        )
        .unwrap();
        let par = run_sharded(
            &cfg,
            &partition,
            &ShardOptions { iterations: 2, batch: BatchOptions::with_workers(4) },
        )
        .unwrap();
        // wall_us is wall-clock (observational); everything else must
        // be bit-identical regardless of worker count.
        let strip = |runs: &[ShardRun]| -> Vec<ShardRun> {
            runs.iter().map(|r| ShardRun { wall_us: 0.0, ..r.clone() }).collect()
        };
        assert_eq!(strip(&seq.shards), strip(&par.shards));
        assert_eq!(seq.mean_latency_us().to_bits(), par.mean_latency_us().to_bits());
        assert_eq!(seq.latency_ci95_us().to_bits(), par.latency_ci95_us().to_bits());
    }

    #[test]
    fn shards_exchange_boundary_load_both_ways() {
        let summary =
            run_sharded(&cfg(4, 16), &uniform_partition(4, 16), &ShardOptions::default()).unwrap();
        let (bg_in, ext_out) = summary.boundary_totals();
        assert!(bg_in > 0, "background jobs absorbed");
        assert!(ext_out > 0, "external messages crossed out");
        // With C=4, N0=16: P ≈ 48/63 ≈ 0.76 of messages are external,
        // and each shard's background rate is (C−1)·n_c·P·λ_bg, so
        // boundary-in should be the same order as boundary-out × (C−1),
        // scaled by the duration the shards actually ran.
        for s in &summary.shards {
            assert!(s.boundary_in > s.boundary_out, "{s:?}");
        }
    }

    #[test]
    fn fixed_point_lowers_background_below_nominal() {
        let cfg = cfg(4, 16);
        let summary =
            run_sharded(&cfg, &uniform_partition(4, 16), &ShardOptions::default()).unwrap();
        assert_eq!(summary.iterations, 2);
        // Blocked sources throttle: the measured rate the second pass
        // used must be below the nominal λ.
        assert!(summary.background_lambda_per_us < cfg.system.lambda_per_us);
        assert!(summary.background_lambda_per_us > 0.0);
    }

    #[test]
    fn sharded_agrees_with_monolithic_flow_sim() {
        // Moderate load, C=8×16: the decomposition's only approximation
        // is the Poisson background + local-ECN1 feedback proxy, so the
        // sharded mean should track the monolithic simulator closely.
        let sys = system(8, 16).with_lambda(1e-5);
        let cfg = SimConfig::new(sys).with_messages(4_000).with_warmup(500).with_seed(33);
        let mono = FlowSimulator::run(&cfg).unwrap();
        let sharded =
            run_sharded(&cfg, &uniform_partition(8, 16), &ShardOptions::default()).unwrap();
        let rel = (sharded.mean_latency_us() - mono.mean_latency_us).abs() / mono.mean_latency_us;
        assert!(
            rel < 0.10,
            "sharded {} vs monolithic {} ({:.1}%)",
            sharded.mean_latency_us(),
            mono.mean_latency_us,
            rel * 100.0
        );
    }

    #[test]
    fn hop_source_modulates_but_centred_matrix_stays_close() {
        // A matrix whose bands are centred exactly on the fitted
        // centres only adds zero-mean jitter: the sharded mean with
        // hop modulation must stay close to the unmodulated one.
        let spec = SyntheticSpec::uniform(
            4,
            16,
            LatencyBand::new(50.0, 4.0).unwrap(),
            LatencyBand::new(400.0, 30.0).unwrap(),
            5,
        );
        let src = spec.source().unwrap();
        let partition = src.partition();
        let sys = system(4, 16).with_lambda(1e-5);
        let cfg = SimConfig::new(sys).with_messages(2_000).with_warmup(300).with_seed(21);
        let plain = run_sharded(&cfg, &partition, &ShardOptions::default()).unwrap();
        let hop = HopDelays { source: &src, intra_centre_us: 50.0, inter_centre_us: 400.0 };
        let modulated =
            run_sharded_with(&cfg, &partition, Some(hop), &ShardOptions::default()).unwrap();
        let rel =
            (modulated.mean_latency_us() - plain.mean_latency_us()).abs() / plain.mean_latency_us();
        assert!(rel < 0.15, "modulated {rel:.3} off plain");
        // And the modulated run is genuinely different (the matrix is
        // being consumed).
        assert_ne!(modulated.mean_latency_us(), plain.mean_latency_us());
    }

    #[test]
    fn rejects_bad_partitions() {
        let cfg = cfg(4, 16);
        let wrong_count = uniform_partition(2, 32);
        assert!(run_sharded(&cfg, &wrong_count, &ShardOptions::default()).is_err());
        let mut duplicated = uniform_partition(4, 16);
        duplicated[0][0] = 17; // node 17 now appears twice
        assert!(run_sharded(&cfg, &duplicated, &ShardOptions::default()).is_err());
        let mut short = uniform_partition(4, 16);
        short[3].pop();
        assert!(run_sharded(&cfg, &short, &ShardOptions::default()).is_err());
    }

    #[test]
    fn single_cluster_degenerates_to_pure_local_traffic() {
        let sys = system(1, 32);
        let cfg = SimConfig::new(sys).with_messages(1_000).with_seed(3);
        let summary =
            run_sharded(&cfg, &uniform_partition(1, 32), &ShardOptions::default()).unwrap();
        let (bg_in, ext_out) = summary.boundary_totals();
        assert_eq!(bg_in, 0);
        assert_eq!(ext_out, 0);
        assert!(summary.mean_latency_us() > 0.0);
    }
}
