//! The paper's §6 validation, as an executable test: the analytical
//! model must agree with the flow-level simulator on mean message
//! latency across the evaluation grid.
//!
//! The paper claims its model predicts "with good degree of accuracy";
//! our reproduction quantifies that as ≤ 8% relative error at every
//! grid point (measured agreement is ~2% at most points; the tolerance
//! allows for 6,000-message sampling noise).

use hmcs_core::config::{QueueAccounting, SystemConfig};
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_topology::transmission::Architecture;

fn compare(scenario: Scenario, clusters: usize, arch: Architecture, bytes: u64) -> (f64, f64) {
    let sys =
        SystemConfig::paper_preset(scenario, clusters, arch).unwrap().with_message_bytes(bytes);
    let analysis = AnalyticalModel::evaluate(&sys).unwrap();
    let sim = FlowSimulator::run(
        &SimConfig::new(sys).with_messages(6_000).with_warmup(1_500).with_seed(2025),
    )
    .unwrap();
    (analysis.latency.mean_message_latency_us, sim.mean_latency_us)
}

fn assert_close(scenario: Scenario, clusters: usize, arch: Architecture, bytes: u64, tol: f64) {
    let (a, s) = compare(scenario, clusters, arch, bytes);
    let rel = (a - s).abs() / s;
    assert!(
        rel < tol,
        "{scenario:?} C={clusters} {arch:?} M={bytes}: analysis {a:.1} vs sim {s:.1} \
         ({:.1}% > {:.1}%)",
        rel * 100.0,
        tol * 100.0
    );
}

#[test]
fn nonblocking_case1_agrees_across_cluster_counts() {
    for c in [1usize, 2, 8, 32, 256] {
        assert_close(Scenario::Case1, c, Architecture::NonBlocking, 1024, 0.08);
    }
}

#[test]
fn nonblocking_case2_agrees_across_cluster_counts() {
    for c in [1usize, 4, 16, 128] {
        assert_close(Scenario::Case2, c, Architecture::NonBlocking, 1024, 0.08);
    }
}

#[test]
fn blocking_case1_agrees_across_cluster_counts() {
    for c in [1usize, 2, 8, 64] {
        assert_close(Scenario::Case1, c, Architecture::Blocking, 1024, 0.08);
    }
}

#[test]
fn blocking_case2_agrees_across_cluster_counts() {
    for c in [16usize, 128] {
        assert_close(Scenario::Case2, c, Architecture::Blocking, 1024, 0.08);
    }
    // C=4 in Case 2 puts TWO tier types near saturation at once (the
    // slow blocking FE ICN1s and the GE ECN1s). With several bottlenecks
    // sharing one blocked source population the open-network M/M/1
    // approximation genuinely degrades; the analysis overestimates by
    // ~15-20% here. We pin the looser bound to document the model's
    // limit rather than hide the point (see EXPERIMENTS.md).
    assert_close(Scenario::Case2, 4, Architecture::Blocking, 1024, 0.25);
}

#[test]
fn agreement_holds_for_small_messages_too() {
    for c in [2usize, 16] {
        assert_close(Scenario::Case1, c, Architecture::NonBlocking, 512, 0.08);
        assert_close(Scenario::Case2, c, Architecture::Blocking, 512, 0.08);
    }
}

#[test]
fn paper_literal_accounting_diverges_where_ecn1_is_loaded() {
    // The reproduction's headline ablation: eq. 6 as printed
    // double-counts ECN1 occupancy. At C=2 the ECN1 queues carry most of
    // the waiting, so the literal reading underestimates latency by tens
    // of percent while the single-count reading stays tight.
    let sys = SystemConfig::paper_preset(Scenario::Case1, 2, Architecture::NonBlocking).unwrap();
    let sim = FlowSimulator::run(
        &SimConfig::new(sys).with_messages(6_000).with_warmup(1_500).with_seed(2025),
    )
    .unwrap();
    let single = AnalyticalModel::evaluate(&sys.with_accounting(QueueAccounting::SingleQueue))
        .unwrap()
        .latency
        .mean_message_latency_us;
    let literal = AnalyticalModel::evaluate(&sys.with_accounting(QueueAccounting::PaperLiteral))
        .unwrap()
        .latency
        .mean_message_latency_us;
    let err_single = (single - sim.mean_latency_us).abs() / sim.mean_latency_us;
    let err_literal = (literal - sim.mean_latency_us).abs() / sim.mean_latency_us;
    assert!(err_single < 0.08, "single-queue error {err_single}");
    assert!(err_literal > 0.25, "literal error should be large, got {err_literal}");
}

#[test]
fn effective_rate_matches_simulation() {
    // Eq. 7's lambda_eff against the measured delivered rate per node.
    for (c, arch) in [
        (8usize, Architecture::NonBlocking),
        (32, Architecture::Blocking),
        (256, Architecture::NonBlocking),
    ] {
        let sys = SystemConfig::paper_preset(Scenario::Case1, c, arch).unwrap();
        let analysis = AnalyticalModel::evaluate(&sys).unwrap();
        let sim = FlowSimulator::run(
            &SimConfig::new(sys).with_messages(6_000).with_warmup(1_500).with_seed(9),
        )
        .unwrap();
        let rel = (analysis.equilibrium.lambda_eff - sim.effective_lambda_per_us).abs()
            / sim.effective_lambda_per_us;
        assert!(
            rel < 0.08,
            "C={c} {arch:?}: lambda_eff analysis {:.3e} vs sim {:.3e}",
            analysis.equilibrium.lambda_eff,
            sim.effective_lambda_per_us
        );
    }
}

#[test]
fn center_utilizations_match_simulation() {
    let sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let analysis = AnalyticalModel::evaluate(&sys).unwrap();
    let sim = FlowSimulator::run(
        &SimConfig::new(sys).with_messages(8_000).with_warmup(2_000).with_seed(33),
    )
    .unwrap();
    let pairs = [
        (analysis.equilibrium.icn1.utilization, sim.icn1.utilization, "ICN1"),
        (analysis.equilibrium.ecn1.utilization, sim.ecn1.utilization, "ECN1"),
        (analysis.equilibrium.icn2.utilization, sim.icn2.utilization, "ICN2"),
    ];
    for (a, s, name) in pairs {
        assert!((a - s).abs() < 0.05 + 0.1 * s, "{name}: analysis rho {a:.3} vs sim {s:.3}");
    }
}
