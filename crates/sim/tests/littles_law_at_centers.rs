//! Little's law at individual service centres: the flow simulator's
//! time-weighted queue lengths must satisfy `L = λ·W` against its own
//! throughput accounting, and match the analytical model's per-centre
//! occupancies at the converged rates.

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_topology::transmission::Architecture;

#[test]
fn center_occupancies_match_analysis() {
    let sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let analysis = AnalyticalModel::evaluate(&sys).unwrap();
    let sim = FlowSimulator::run(
        &SimConfig::new(sys).with_messages(10_000).with_warmup(2_500).with_seed(77),
    )
    .unwrap();
    // ICN2 is the loaded centre; its mean occupancy must track the
    // model's L_I2 within sampling error.
    let l_model = analysis.equilibrium.icn2.number_in_system;
    let l_sim = sim.icn2.mean_number_in_system;
    assert!(
        (l_model - l_sim).abs() / l_model < 0.15,
        "ICN2 occupancy: model {l_model:.1} vs sim {l_sim:.1}"
    );
    // Lightly-loaded ICN1 queues agree in absolute terms.
    let icn1_model = analysis.equilibrium.icn1.number_in_system;
    assert!(
        (icn1_model - sim.icn1.mean_number_in_system).abs() < 0.05,
        "ICN1 occupancy: model {icn1_model:.3} vs sim {:.3}",
        sim.icn1.mean_number_in_system
    );
}

#[test]
fn total_waiting_accounts_for_the_population() {
    // Sum of simulated centre occupancies ~ model's total waiting L,
    // which in turn explains the throttled rate via eq. 7.
    let sys = SystemConfig::paper_preset(Scenario::Case1, 32, Architecture::NonBlocking).unwrap();
    let analysis = AnalyticalModel::evaluate(&sys).unwrap();
    let sim = FlowSimulator::run(
        &SimConfig::new(sys).with_messages(10_000).with_warmup(2_500).with_seed(78),
    )
    .unwrap();
    let clusters = sys.clusters as f64;
    let sim_total = clusters * (sim.icn1.mean_number_in_system + sim.ecn1.mean_number_in_system)
        + sim.icn2.mean_number_in_system;
    let rel =
        (sim_total - analysis.equilibrium.total_waiting).abs() / analysis.equilibrium.total_waiting;
    assert!(
        rel < 0.15,
        "total waiting: model {:.1} vs sim {sim_total:.1}",
        analysis.equilibrium.total_waiting
    );
    // Population sanity: waiting never exceeds N.
    assert!(sim_total < sys.total_nodes() as f64);
}

#[test]
fn littles_law_holds_per_centre_in_simulation() {
    let sys = SystemConfig::paper_preset(Scenario::Case2, 8, Architecture::NonBlocking).unwrap();
    let sim = FlowSimulator::run(
        &SimConfig::new(sys).with_messages(8_000).with_warmup(2_000).with_seed(79),
    )
    .unwrap();
    // ICN2: L = lambda * W. We reconstruct W from L and the arrival
    // count over the run; consistency means the identity holds within
    // measurement noise.
    let arrivals_per_us = sim.icn2.arrivals as f64 / sim.sim_duration_us;
    let w_implied = sim.icn2.mean_number_in_system / arrivals_per_us;
    // W must be at least the service time and below the total runtime.
    let service = hmcs_core::service::ServiceTimes::compute(&sys).unwrap().icn2_us;
    assert!(w_implied > 0.9 * service, "implied W {w_implied} vs service {service}");
    assert!(w_implied < sim.sim_duration_us);
}
