//! Zero-load calibration of the packet-level simulator: with a
//! vanishingly small generation rate there is no queueing, so every
//! latency is a pure sum of deterministic hop costs — checkable in
//! closed form against the explicit topology.

use hmcs_core::config::SystemConfig;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::packet::PacketSimulator;
use hmcs_topology::transmission::Architecture;

const TINY_LAMBDA: f64 = 1e-9; // one message per ~17 simulated minutes

fn run(clusters: usize, arch: Architecture, bytes: u64) -> hmcs_sim::SimResult {
    let sys = SystemConfig::paper_preset(Scenario::Case1, clusters, arch)
        .unwrap()
        .with_message_bytes(bytes)
        .with_lambda(TINY_LAMBDA);
    PacketSimulator::run(&SimConfig::new(sys).with_messages(400).with_seed(99)).unwrap()
}

/// Single-switch regime (C = 16): internal messages cross exactly one
/// switch; external ones cross one switch per tier pass (up=1, icn2
/// route, down=1) plus three tier injections.
#[test]
fn zero_load_single_switch_latencies_are_exact() {
    let r = run(16, Architecture::NonBlocking, 1024);
    let hop_ge = 10.0 + 1024.0 / 94.0; // ICN1/per-switch (GE tier)
    let hop_fe = 10.0 + 1024.0 / 10.5; // ECN1/ICN2 hops (FE tiers)
                                       // Internal: injection alpha_GE + one ICN1 switch.
    let internal = 80.0 + hop_ge;
    assert!(
        (r.internal_latency.mean() - internal).abs() < 1e-6,
        "internal: sim {} vs closed form {internal}",
        r.internal_latency.mean()
    );
    // External: ECN1 up (alpha_FE + 1 hop) + ICN2 (alpha_FE + 1 hop)
    // + ECN1 down (alpha_FE + 1 hop).
    let external = 3.0 * (50.0 + hop_fe);
    assert!(
        (r.external_latency.mean() - external).abs() < 1e-6,
        "external: sim {} vs closed form {external}",
        r.external_latency.mean()
    );
    // The mix respects eq. 8's weights.
    let p = hmcs_core::routing::external_probability(16, 16);
    let expect = (1.0 - p) * internal + p * external;
    // Sampling: only ~400 messages decide the internal/external split.
    assert!(
        (r.mean_latency_us - expect).abs() / expect < 0.05,
        "mix: sim {} vs expectation {expect}",
        r.mean_latency_us
    );
}

/// Zero-load latency never falls below the no-queueing floor and the
/// simulated minimum approaches it.
#[test]
fn zero_load_minimum_hits_the_floor() {
    let r = run(16, Architecture::NonBlocking, 512);
    let hop_ge = 10.0 + 512.0 / 94.0;
    let floor = 80.0 + hop_ge; // cheapest possible: internal one-switch
    assert!(r.latency.min().unwrap() >= floor - 1e-6);
    assert!(r.latency.min().unwrap() < floor + 1.0);
}

/// In the blocking chain at zero load, latency varies with the hop
/// distance but never exceeds the full-chain traversal.
#[test]
fn zero_load_blocking_chain_bounds() {
    // C=1: one linear array of 256 nodes over 11 switches, GE.
    let r = run(1, Architecture::Blocking, 1024);
    let hop = 10.0 + 1024.0 / 94.0;
    let min_floor = 80.0 + hop; // same-switch pair
    let max_ceiling = 80.0 + 11.0 * hop; // end-to-end traversal
    assert!(r.latency.min().unwrap() >= min_floor - 1e-6);
    assert!(r.latency.max().unwrap() <= max_ceiling + 1e-6);
    // The mean sits strictly between.
    assert!(r.mean_latency_us > min_floor && r.mean_latency_us < max_ceiling);
}

/// Message-size scaling at zero load is exactly linear per hop.
#[test]
fn zero_load_scales_linearly_per_hop() {
    let small = run(16, Architecture::NonBlocking, 512);
    let large = run(16, Architecture::NonBlocking, 1024);
    // Internal path: one switch hop carries the payload once.
    let delta = large.internal_latency.mean() - small.internal_latency.mean();
    let expect = 512.0 / 94.0;
    assert!((delta - expect).abs() < 1e-6, "per-hop payload delta {delta} vs {expect}");
}
