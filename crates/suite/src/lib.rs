//! Umbrella crate hosting the workspace-level examples and integration tests.
//!
//! The interesting code lives in `examples/` and `tests/` at the
//! workspace root; this library only re-exports the member crates so
//! those targets can use one coherent namespace.

#![forbid(unsafe_code)]

pub use hmcs_bench as bench;
pub use hmcs_core as core;
pub use hmcs_des as des;
pub use hmcs_queueing as queueing;
pub use hmcs_sim as sim;
pub use hmcs_topology as topology;
