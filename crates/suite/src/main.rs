use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_core::sweep;
use hmcs_topology::transmission::Architecture;

fn main() {
    let base = SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap();
    for p in [8u32, 16, 24, 48, 64] {
        let cfg = base.with_switch(hmcs_topology::switch::SwitchFabric::new(p, 10.0).unwrap());
        let r = AnalyticalModel::evaluate(&cfg).unwrap();
        println!(
            "ports={p:3} lat={:.3}us icn1_T={:.2} ecn1_T={:.2} icn2_T={:.2} leff={:.6e}",
            r.latency.mean_message_latency_us,
            r.service_times.icn1_us,
            r.service_times.ecn1_us,
            r.service_times.icn2_us,
            r.equilibrium.lambda_eff
        );
    }
    let _ = sweep::switch_ports_sweep(&base, &[8]);
}
