//! Bisection-width analysis (§5.1, Definition 1, Theorem 1).
//!
//! *Bisection width* is the minimum number of links that must be cut to
//! divide a topology into two equal halves (±1 node); a network has
//! *full bisection bandwidth* when that width is `N/2` single-link
//! bandwidths (Definition 1). The paper proves the multi-stage fat-tree
//! has full bisection bandwidth (Theorem 1) and uses the linear array's
//! bisection width of 1 to justify the blocking penalty of eq. 20.
//!
//! This module provides:
//! * [`natural_split_cut`] — the min-cut between the canonical
//!   index-halves via max-flow (exact for the symmetric topologies built
//!   here, where the natural split is an optimal bisection);
//! * [`exhaustive_bisection_width`] — brute force over *all* balanced
//!   partitions, feasible for ≤ ~20 endpoints, used in tests to confirm
//!   that the natural split is indeed optimal;
//! * [`BisectionReport`] / [`analyze`] — the Definition-1 verdict for a
//!   topology graph.

use crate::graph::Graph;

/// Outcome of a bisection analysis of a topology with `n` endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectionReport {
    /// Number of endpoints `N`.
    pub endpoints: usize,
    /// Measured bisection width (links cut between the halves).
    pub bisection_width: usize,
    /// `⌈N/2⌉` — the width required for full bisection bandwidth.
    pub full_bisection_target: usize,
}

impl BisectionReport {
    /// Definition 1: true when the bisection width reaches `N/2` links.
    pub fn has_full_bisection_bandwidth(&self) -> bool {
        self.bisection_width >= self.full_bisection_target
    }

    /// The paper's `n/b` figure of merit (§5.1): steps needed to ship
    /// one value per node across the bisection. Lower is better; 2 for a
    /// full-bisection network.
    pub fn exchange_steps(&self) -> f64 {
        self.endpoints as f64 / self.bisection_width as f64
    }
}

/// Min-cut between the canonical halves `0..n/2` and `n/2..n` of a
/// topology graph whose first `n` vertices are endpoints.
///
/// # Panics
///
/// Panics if `endpoints < 2` or the graph has fewer vertices than
/// `endpoints`.
pub fn natural_split_cut(graph: &Graph, endpoints: usize) -> usize {
    assert!(endpoints >= 2, "bisection needs at least two endpoints");
    assert!(graph.vertex_count() >= endpoints, "graph smaller than endpoint count");
    let half = endpoints / 2;
    let left: Vec<usize> = (0..half).collect();
    let right: Vec<usize> = (half..endpoints).collect();
    graph.min_cut_between_sets(&left, &right)
}

/// Exhaustive bisection width: minimum cut over **all** balanced
/// endpoint partitions (left side of size ⌊n/2⌋). Exponential — intended
/// for cross-checking on ≤ ~20 endpoints.
///
/// # Panics
///
/// Panics if `endpoints < 2`, exceeds the graph size, or exceeds 24
/// (enumeration guard).
pub fn exhaustive_bisection_width(graph: &Graph, endpoints: usize) -> usize {
    assert!(endpoints >= 2, "bisection needs at least two endpoints");
    assert!(endpoints <= 24, "exhaustive search is limited to 24 endpoints");
    assert!(graph.vertex_count() >= endpoints, "graph smaller than endpoint count");
    let half = endpoints / 2;
    let mut best = usize::MAX;
    // Iterate subsets of {0..endpoints} of size `half` containing
    // endpoint 0 (fixing 0 halves the work; the complement covers the
    // rest).
    let full: u32 = endpoints as u32;
    for mask in 0u32..(1 << (full - 1)) {
        let subset = (mask << 1) | 1; // endpoint 0 always on the left
        if subset.count_ones() as usize != half {
            continue;
        }
        let mut left = Vec::with_capacity(half);
        let mut right = Vec::with_capacity(endpoints - half);
        for v in 0..endpoints {
            if subset >> v & 1 == 1 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        best = best.min(graph.min_cut_between_sets(&left, &right));
        if best == 0 {
            break;
        }
    }
    // When n is odd the fixed-vertex trick can miss partitions where
    // vertex 0 sits on the larger side; sweep those too.
    if endpoints % 2 == 1 {
        for mask in 0u32..(1 << (full - 1)) {
            let subset = mask << 1; // endpoint 0 on the right
            if subset.count_ones() as usize != half {
                continue;
            }
            let mut left = Vec::with_capacity(half);
            let mut right = Vec::with_capacity(endpoints - half);
            for v in 0..endpoints {
                if subset >> v & 1 == 1 {
                    left.push(v);
                } else {
                    right.push(v);
                }
            }
            best = best.min(graph.min_cut_between_sets(&left, &right));
        }
    }
    best
}

/// Runs the Definition-1 analysis on a topology graph using the natural
/// index split.
pub fn analyze(graph: &Graph, endpoints: usize) -> BisectionReport {
    BisectionReport {
        endpoints,
        bisection_width: natural_split_cut(graph, endpoints),
        full_bisection_target: endpoints.div_ceil(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fat_tree::FatTree;
    use crate::linear_array::LinearArray;
    use crate::switch::SwitchFabric;

    fn sw(ports: u32) -> SwitchFabric {
        SwitchFabric::new(ports, 10.0).unwrap()
    }

    #[test]
    fn theorem1_fat_tree_has_full_bisection_bandwidth() {
        for (n, p) in [(16usize, 8u32), (32, 8), (16, 4), (48, 24)] {
            let ft = FatTree::new(n, sw(p)).unwrap();
            let g = ft.build_graph();
            let report = analyze(g.graph(), n);
            assert!(
                report.has_full_bisection_bandwidth(),
                "fat-tree n={n} p={p}: width {} < {}",
                report.bisection_width,
                report.full_bisection_target
            );
            assert!((report.exchange_steps() - 2.0).abs() < 1.0);
        }
    }

    #[test]
    fn linear_array_has_bisection_width_one() {
        // Boundary-aligned halves: the cut is exactly one chain link.
        for (n, p) in [(48usize, 24u32), (96, 24), (8, 4)] {
            let la = LinearArray::new(n, sw(p)).unwrap();
            let report = analyze(&la.build_graph(), n);
            assert_eq!(report.bisection_width, 1, "n={n} p={p}");
            assert!(!report.has_full_bisection_bandwidth());
            assert!((report.exchange_steps() - n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn natural_split_is_optimal_for_small_fat_tree() {
        // Verify by exhaustive search that the index split used by
        // Theorem 1 really is a minimum bisection.
        let ft = FatTree::new(8, sw(4)).unwrap();
        let g = ft.build_graph();
        let natural = natural_split_cut(g.graph(), 8);
        let exhaustive = exhaustive_bisection_width(g.graph(), 8);
        assert_eq!(natural, exhaustive);
        assert_eq!(exhaustive, 4, "N/2 = 4");
    }

    #[test]
    fn natural_split_is_optimal_for_small_linear_array() {
        let la = LinearArray::new(8, sw(4)).unwrap();
        let g = la.build_graph();
        assert_eq!(exhaustive_bisection_width(&g, 8), 1);
        assert_eq!(natural_split_cut(&g, 8), 1);
    }

    #[test]
    fn exhaustive_handles_odd_endpoint_counts() {
        let la = LinearArray::new(7, sw(4)).unwrap();
        let g = la.build_graph();
        // 7 endpoints over 2 switches: cut the single chain link.
        assert_eq!(exhaustive_bisection_width(&g, 7), 1);
    }

    #[test]
    fn tree_bisection_is_one() {
        // The paper's §5.1 example: a tree has bisection width 1 — two
        // switches, three endpoints each, one bridging link whose removal
        // splits the endpoints into equal halves.
        let mut g = Graph::new(6 + 2);
        for i in 0..6 {
            g.add_edge(i, 6 + i / 3);
        }
        g.add_edge(6, 7);
        assert_eq!(exhaustive_bisection_width(&g, 6), 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_endpoint() {
        let g = Graph::new(2);
        natural_split_cut(&g, 1);
    }

    #[test]
    #[should_panic(expected = "limited to 24")]
    fn exhaustive_guards_against_explosion() {
        let g = Graph::new(30);
        exhaustive_bisection_width(&g, 30);
    }
}
