//! Transmission-time model for **direct networks** (k-ary n-cubes) and
//! the bisection-generalised blocking penalty.
//!
//! The paper handles two extremes: full bisection bandwidth (fat-tree,
//! `T_B = 0`) and bisection width 1 (linear array,
//! `T_B = (N/2−1)·M·β`, eq. 20). Both are instances of one rule:
//! under uniform traffic, half of all messages cross the bisection, so
//! a network of bisection width `b` serialises `N/2` concurrent
//! cross-flows over `b` links —
//!
//! ```text
//! T_B = max(0, N/(2b) − 1)·M·β
//! ```
//!
//! which reduces to eq. 20 at `b = 1` and vanishes at `b = N/2`
//! (Definition 1). This module applies that generalisation to the
//! k-ary n-cubes of [`crate::kary_ncube`], giving the paper's framework
//! a third architecture family with intermediate bisection widths.

use crate::error::TopologyError;
use crate::kary_ncube::KaryNCube;
use crate::technology::NetworkTechnology;
use crate::transmission::TransmissionBreakdown;

/// The bisection-generalised blocking penalty (µs):
/// `max(0, N/(2b) − 1) · M·β`.
pub fn generalized_blocking_penalty_us(
    endpoints: usize,
    bisection_width: usize,
    message_bytes: u64,
    technology: NetworkTechnology,
) -> f64 {
    assert!(bisection_width > 0, "bisection width must be positive");
    let n = endpoints as f64;
    let b = bisection_width as f64;
    let payload = message_bytes as f64 * technology.byte_time_us();
    (n / (2.0 * b) - 1.0).max(0.0) * payload
}

/// A direct network: nodes contain their own routers; links carry one
/// technology; dimension-order routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectNetworkModel {
    technology: NetworkTechnology,
    cube: KaryNCube,
    router_latency_us: f64,
}

impl DirectNetworkModel {
    /// Builds a model for the given cube; `router_latency_us` is the
    /// per-hop router traversal cost (the α_sw analogue).
    pub fn new(
        technology: NetworkTechnology,
        cube: KaryNCube,
        router_latency_us: f64,
    ) -> Result<Self, TopologyError> {
        if !router_latency_us.is_finite() || router_latency_us < 0.0 {
            return Err(TopologyError::InvalidParameter {
                name: "router_latency_us",
                reason: "must be finite and non-negative",
            });
        }
        Ok(DirectNetworkModel { technology, cube, router_latency_us })
    }

    /// The underlying cube.
    #[inline]
    pub fn cube(&self) -> KaryNCube {
        self.cube
    }

    /// Mean transmission time decomposition for an `message_bytes`-byte
    /// message under uniform traffic, in the paper's accounting style
    /// (eq. 11/21 analogue): link latency + mean hops × router latency
    /// + payload + generalised blocking penalty.
    pub fn breakdown(&self, message_bytes: u64) -> TransmissionBreakdown {
        let payload = message_bytes as f64 * self.technology.byte_time_us();
        let hops = self.cube.mean_hop_count();
        let blocking = match self.cube.bisection_width() {
            Some(b) => generalized_blocking_penalty_us(
                self.cube.nodes(),
                b,
                message_bytes,
                self.technology,
            ),
            // Odd radixes: bound the penalty with the even-radix width
            // of the next-lower even radix (conservative).
            None => {
                let b = 2
                    * (self.cube.radix() as usize - 1).max(1)
                    * (self.cube.radix() as usize).pow(self.cube.dimensions() - 1)
                    / self.cube.radix() as usize;
                generalized_blocking_penalty_us(
                    self.cube.nodes(),
                    b.max(1),
                    message_bytes,
                    self.technology,
                )
            }
        };
        TransmissionBreakdown {
            link_latency_us: self.technology.latency_us,
            switch_delay_us: hops * self.router_latency_us,
            payload_time_us: payload,
            blocking_time_us: blocking,
        }
    }

    /// Total mean transmission time (µs).
    #[inline]
    pub fn mean_time_us(&self, message_bytes: u64) -> f64 {
        self.breakdown(message_bytes).total_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_array::LinearArray;
    use crate::switch::SwitchFabric;
    use crate::transmission::{Architecture, TransmissionModel};

    fn ge() -> NetworkTechnology {
        NetworkTechnology::GIGABIT_ETHERNET
    }

    #[test]
    fn penalty_reduces_to_eq20_for_width_one() {
        // b = 1: (N/2 - 1) M beta — exactly the paper's eq. 20.
        let penalty = generalized_blocking_penalty_us(256, 1, 1024, ge());
        let eq20 = (128.0 - 1.0) * 1024.0 / 94.0;
        assert!((penalty - eq20).abs() < 1e-9);
        // Cross-check against the switch-based blocking model.
        let tm = TransmissionModel::new(
            ge(),
            SwitchFabric::paper_default(),
            256,
            Architecture::Blocking,
        )
        .unwrap();
        assert!((tm.breakdown(1024).blocking_time_us - penalty).abs() < 1e-9);
        let _ = LinearArray::new(256, SwitchFabric::paper_default()).unwrap();
    }

    #[test]
    fn penalty_vanishes_at_full_bisection() {
        assert_eq!(generalized_blocking_penalty_us(256, 128, 1024, ge()), 0.0);
        assert_eq!(generalized_blocking_penalty_us(16, 8, 512, ge()), 0.0);
    }

    #[test]
    fn penalty_interpolates_monotonically_in_width() {
        let mut prev = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let p = generalized_blocking_penalty_us(256, b, 1024, ge());
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn torus_model_composes_the_pieces() {
        // 16x16 torus of 256 nodes: bisection 32, mean hops 8*256/255.
        let cube = KaryNCube::new(16, 2).unwrap();
        assert_eq!(cube.nodes(), 256);
        let model = DirectNetworkModel::new(ge(), cube, 10.0).unwrap();
        let bd = model.breakdown(1024);
        let payload = 1024.0 / 94.0;
        assert!((bd.payload_time_us - payload).abs() < 1e-12);
        // b = 2*16 = 32 => penalty = (256/64 - 1) * payload = 3 payloads.
        assert!((bd.blocking_time_us - 3.0 * payload).abs() < 1e-9);
        let hops = cube.mean_hop_count();
        assert!((bd.switch_delay_us - hops * 10.0).abs() < 1e-9);
        assert!((model.mean_time_us(1024) - bd.total_us()).abs() < 1e-12);
    }

    #[test]
    fn torus_sits_between_linear_array_and_fat_tree() {
        // Same 256 endpoints, same technology: the torus's blocking
        // penalty is far below the linear array's and above the
        // fat-tree's zero.
        let cube = DirectNetworkModel::new(ge(), KaryNCube::new(16, 2).unwrap(), 10.0).unwrap();
        let sw = SwitchFabric::paper_default();
        let linear = TransmissionModel::new(ge(), sw, 256, Architecture::Blocking).unwrap();
        let tree = TransmissionModel::new(ge(), sw, 256, Architecture::NonBlocking).unwrap();
        let b_cube = cube.breakdown(1024).blocking_time_us;
        let b_lin = linear.breakdown(1024).blocking_time_us;
        let b_tree = tree.breakdown(1024).blocking_time_us;
        assert!(b_tree < b_cube && b_cube < b_lin);
        assert!(b_lin / b_cube > 30.0, "width 32 vs width 1");
    }

    #[test]
    fn hypercube_has_no_penalty_and_log_hops() {
        // 2^8 = 256 nodes: bisection 128 = N/2 (full), mean hops ~ 4.
        let cube = KaryNCube::hypercube(8).unwrap();
        let model = DirectNetworkModel::new(ge(), cube, 10.0).unwrap();
        let bd = model.breakdown(1024);
        assert_eq!(bd.blocking_time_us, 0.0, "hypercube has full bisection");
        assert!((cube.mean_hop_count() - 4.0 * 256.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_router_latency() {
        let cube = KaryNCube::new(4, 2).unwrap();
        assert!(DirectNetworkModel::new(ge(), cube, -1.0).is_err());
        assert!(DirectNetworkModel::new(ge(), cube, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn penalty_rejects_zero_width() {
        generalized_blocking_penalty_us(16, 0, 64, ge());
    }
}
