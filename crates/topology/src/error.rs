//! Error type for topology construction and analysis.

use std::fmt;

/// Errors reported while constructing or analysing a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A structural parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: &'static str,
    },
    /// A node index referenced a node outside the topology.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of nodes in the topology.
        nodes: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            TopologyError::NodeOutOfRange { index, nodes } => {
                write!(f, "node index {index} out of range (topology has {nodes} nodes)")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopologyError::InvalidParameter { name: "ports", reason: "must be even" };
        assert!(format!("{e}").contains("ports"));
        let e = TopologyError::NodeOutOfRange { index: 9, nodes: 4 };
        assert!(format!("{e}").contains('9'));
    }
}
