//! The Multi-Stage Fat-Tree — the paper's **non-blocking** interconnect
//! (§5.2, Figure 3).
//!
//! The tree is built from `Pr`-port switch fabrics. Middle stages split
//! ports as `UL = DL = Pr/2`; the last (root) stage uses all ports as
//! down-links. Stage count follows eq. 12 and switch count follows
//! eq. 13 / Proposition 1; Theorem 1 (full bisection bandwidth) is
//! verified structurally in tests via max-flow on the explicit graph.
//!
//! ## Explicit graph: the pod-collapsed representation
//!
//! For analyses that need an actual graph (bisection verification,
//! packet-level simulation) we build a **pod-collapsed multigraph**: the
//! `D^{s−1}` parallel switches that form a stage-`s` "pod" of a folded
//! Clos are merged into one vertex, and the physical links between two
//! pods become parallel edges with the exact physical multiplicity. This
//! preserves bisection width and up/down hop counts exactly, and for
//! `d ≤ 2` (every configuration in the paper's experiments — N=256,
//! Pr=24 gives d=2) the pods are single switches so the graph is
//! switch-exact.

use crate::error::TopologyError;
use crate::graph::Graph;
use crate::switch::SwitchFabric;

/// A multi-stage fat-tree over `n` endpoints built from a given switch
/// fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTree {
    nodes: usize,
    switch: SwitchFabric,
    stages: u32,
}

impl FatTree {
    /// Builds the fat-tree description for `nodes` endpoints.
    ///
    /// # Errors
    ///
    /// * `nodes` must be ≥ 1;
    /// * a 2-port switch (down-radix 1) cannot form a multi-stage tree,
    ///   so `ports = 2` is only accepted when `nodes ≤ 2`.
    pub fn new(nodes: usize, switch: SwitchFabric) -> Result<Self, TopologyError> {
        if nodes == 0 {
            return Err(TopologyError::InvalidParameter {
                name: "nodes",
                reason: "fat-tree needs at least one endpoint",
            });
        }
        if nodes > switch.ports() as usize && switch.ports() == 2 {
            return Err(TopologyError::InvalidParameter {
                name: "ports",
                reason: "2-port switches cannot form a multi-stage fat-tree",
            });
        }
        let stages = Self::stage_count_structural(nodes, switch.ports());
        Ok(FatTree { nodes, switch, stages })
    }

    /// Number of endpoints.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The switch fabric used throughout the tree.
    #[inline]
    pub fn switch(&self) -> SwitchFabric {
        self.switch
    }

    /// Number of stages `d` (paper eq. 12).
    #[inline]
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Integer-exact stage count: the smallest `d ≥ 1` such that the
    /// tree's capacity `Pr·(Pr/2)^{d−1}` reaches `n`. This is precisely
    /// eq. 12, `d = ⌈log₂(N/2) / log₂(Pr/2)⌉`, evaluated without
    /// floating-point hazards (tests cross-check the two forms).
    fn stage_count_structural(nodes: usize, ports: u32) -> u32 {
        let pr = ports as u128;
        let radix = pr / 2;
        let n = nodes as u128;
        let mut d: u32 = 1;
        let mut capacity = pr;
        while capacity < n {
            d += 1;
            capacity = capacity.saturating_mul(radix);
        }
        d
    }

    /// Eq. 12 evaluated literally in floating point:
    /// `d = ⌈log₂(N/2)/log₂(Pr/2)⌉`, clamped to ≥ 1. Provided for
    /// fidelity checks; [`FatTree::stages`] uses the integer-exact form.
    pub fn stage_count_eq12(nodes: usize, ports: u32) -> u32 {
        if nodes <= 2 {
            return 1;
        }
        let num = (nodes as f64 / 2.0).log2();
        let den = (ports as f64 / 2.0).log2();
        if den <= 0.0 {
            return 1;
        }
        let d = (num / den).ceil();
        (d as u32).max(1)
    }

    /// Maximum number of endpoints a `d`-stage tree of this switch can
    /// serve: `Pr·(Pr/2)^{d−1}`.
    pub fn capacity(&self) -> u128 {
        let pr = self.switch.ports() as u128;
        pr.saturating_mul((pr / 2).saturating_pow(self.stages - 1))
    }

    /// Number of switches per **middle** stage, `⌈N / (Pr/2)⌉`
    /// (Proposition 1).
    pub fn switches_per_middle_stage(&self) -> usize {
        self.nodes.div_ceil(self.switch.ports() as usize / 2)
    }

    /// Number of switches in the **last** (root) stage, `⌈N/Pr⌉`.
    pub fn switches_in_last_stage(&self) -> usize {
        self.nodes.div_ceil(self.switch.ports() as usize)
    }

    /// Total switch count — paper eq. 13:
    /// `k = (d−1)·⌈2N/Pr⌉ + ⌈N/Pr⌉`.
    pub fn switch_count(&self) -> usize {
        (self.stages as usize - 1) * self.switches_per_middle_stage()
            + self.switches_in_last_stage()
    }

    /// Worst-case number of switches a message traverses: up to the root
    /// and back down, `2d − 1` (the multiplier in eq. 11).
    #[inline]
    pub fn worst_case_switch_traversals(&self) -> u32 {
        2 * self.stages - 1
    }

    /// True when the whole network is one switch (d = 1 and a single
    /// last-stage switch) — the regime responsible for the latency kink
    /// the paper observes at C = 16 (§6).
    pub fn is_single_switch(&self) -> bool {
        self.stages == 1 && self.switches_in_last_stage() == 1
    }

    /// Down-radix `D = Pr/2`: endpoints per leaf switch.
    #[inline]
    fn down_radix(&self) -> usize {
        (self.switch.ports() / 2) as usize
    }

    /// Number of switches traversed by a message between two endpoints
    /// under up/down routing: `2s − 1`, where `s` is the lowest stage at
    /// which the endpoints share a pod. Returns 0 for `a == b`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::NodeOutOfRange`] for invalid endpoints.
    pub fn switch_traversals(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        for &v in &[a, b] {
            if v >= self.nodes {
                return Err(TopologyError::NodeOutOfRange { index: v, nodes: self.nodes });
            }
        }
        if a == b {
            return Ok(0);
        }
        let d = self.down_radix();
        let mut block = d; // pod size at stage 1
        for s in 1..self.stages {
            if a / block == b / block {
                return Ok(2 * s - 1);
            }
            block = block.saturating_mul(d);
        }
        // Top stage covers everything.
        Ok(2 * self.stages - 1)
    }

    /// Exact mean switch traversals over ordered pairs of distinct
    /// endpoints under uniform traffic. The paper conservatively uses the
    /// worst case `2d−1` in eq. 11; this exact average quantifies that
    /// approximation (`ablation-hops` experiment).
    pub fn mean_switch_traversals(&self) -> f64 {
        if self.nodes < 2 {
            return 0.0;
        }
        let n = self.nodes as f64;
        let d_radix = self.down_radix();
        // P(shared pod at stage s but not s-1) summed exactly from block
        // sizes. pairs_within(block) counts ordered pairs in same block.
        let pairs_within = |block: usize| -> f64 {
            if block == 0 {
                return 0.0;
            }
            let full_blocks = self.nodes / block;
            let rem = self.nodes % block;
            (full_blocks * block * (block - 1) + rem * rem.saturating_sub(1)) as f64
        };
        let total_pairs = n * (n - 1.0);
        let mut acc = 0.0;
        let mut prev_within = 0.0;
        let mut block = d_radix;
        for s in 1..self.stages {
            let within = pairs_within(block);
            acc += (within - prev_within) * (2 * s - 1) as f64;
            prev_within = within;
            block = block.saturating_mul(d_radix);
        }
        // Remaining pairs meet at the top stage.
        acc += (total_pairs - prev_within) * (2 * self.stages - 1) as f64;
        acc / total_pairs
    }

    /// Builds the pod-collapsed explicit multigraph.
    ///
    /// Vertex layout: `0..n` are endpoints; pods follow stage by stage
    /// (stage 1 pods first). Every physical link is one unit-capacity
    /// edge (links between pods appear with their physical multiplicity),
    /// so max-flow cuts on this graph measure link counts.
    pub fn build_graph(&self) -> FatTreeGraph {
        let d_radix = self.down_radix();
        let mut pods_per_stage: Vec<usize> = Vec::new();
        let mut stage_offsets: Vec<usize> = Vec::new();

        // Stage s pods: ceil(n / D^s) for s < d, exactly 1 for s = d
        // (the merged root pod).
        let mut block = d_radix;
        for s in 1..=self.stages {
            let pods = if s == self.stages { 1 } else { self.nodes.div_ceil(block) };
            pods_per_stage.push(pods);
            block = block.saturating_mul(d_radix);
        }

        // Allocate pod vertices after the endpoint vertices.
        let mut next = self.nodes;
        for &pods in &pods_per_stage {
            stage_offsets.push(next);
            next += pods;
        }
        let mut graph = Graph::new(next);

        // Endpoint -> leaf pod edges (one physical link each). In a
        // single-stage tree the only pod is the root.
        for node in 0..self.nodes {
            let leaf =
                if self.stages == 1 { stage_offsets[0] } else { stage_offsets[0] + node / d_radix };
            graph.add_edge(node, leaf);
        }

        // Pod -> parent pod trunk edges with physical multiplicity: a
        // stage-s pod covering `c` endpoints contains ⌈c/D⌉ switches,
        // each with D up-links.
        let mut block = d_radix;
        for s in 1..self.stages {
            let pods = pods_per_stage[(s - 1) as usize];
            let parent_block = block * d_radix;
            for g in 0..pods {
                let covered = (self.nodes.min((g + 1) * block)).saturating_sub(g * block);
                if covered == 0 {
                    continue;
                }
                let uplinks = covered.div_ceil(d_radix) * d_radix;
                let parent = if s + 1 == self.stages {
                    stage_offsets[s as usize] // single root pod
                } else {
                    stage_offsets[s as usize] + (g * block) / parent_block
                };
                let child = stage_offsets[(s - 1) as usize] + g;
                for _ in 0..uplinks {
                    graph.add_edge(child, parent);
                }
            }
            block = parent_block;
        }

        FatTreeGraph { graph, nodes: self.nodes }
    }
}

/// The pod-collapsed explicit graph of a fat-tree.
#[derive(Debug, Clone)]
pub struct FatTreeGraph {
    graph: Graph,
    nodes: usize,
}

impl FatTreeGraph {
    /// The underlying multigraph (endpoints are vertices `0..nodes`).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of endpoint vertices.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Measures the cut width between the canonical halves
    /// (`0..n/2` vs `n/2..n`) by max-flow — the quantity Theorem 1
    /// states equals `N/2` ("full bisection bandwidth").
    pub fn natural_bisection_width(&self) -> usize {
        let half = self.nodes / 2;
        let left: Vec<usize> = (0..half).collect();
        let right: Vec<usize> = (half..self.nodes).collect();
        self.graph.min_cut_between_sets(&left, &right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(ports: u32) -> SwitchFabric {
        SwitchFabric::new(ports, 10.0).unwrap()
    }

    #[test]
    fn figure3_example_16_nodes_8_ports() {
        let ft = FatTree::new(16, sw(8)).unwrap();
        assert_eq!(ft.stages(), 2, "paper: d = 2");
        assert_eq!(ft.switch_count(), 6, "paper: k = 6");
        assert_eq!(ft.switches_per_middle_stage(), 4);
        assert_eq!(ft.switches_in_last_stage(), 2);
        assert_eq!(ft.worst_case_switch_traversals(), 3);
        assert!(!ft.is_single_switch());
    }

    #[test]
    fn paper_experiment_scale_256_nodes_24_ports() {
        let ft = FatTree::new(256, sw(24)).unwrap();
        assert_eq!(ft.stages(), 2);
        // k = (2-1)*ceil(256/12) + ceil(256/24) = 22 + 11 = 33.
        assert_eq!(ft.switch_count(), 33);
    }

    #[test]
    fn single_switch_regime() {
        // N <= Pr: one stage; and N <= Pr means one switch.
        let ft = FatTree::new(16, sw(24)).unwrap();
        assert_eq!(ft.stages(), 1);
        assert_eq!(ft.switch_count(), 1);
        assert!(ft.is_single_switch());
        assert_eq!(ft.worst_case_switch_traversals(), 1);
    }

    #[test]
    fn structural_stage_count_matches_eq12_over_a_grid() {
        for ports in [4u32, 8, 12, 16, 24, 32, 48, 64] {
            for nodes in [1usize, 2, 3, 7, 8, 16, 17, 64, 100, 256, 500, 1024, 4096] {
                let structural = FatTree::stage_count_structural(nodes, ports);
                let eq12 = FatTree::stage_count_eq12(nodes, ports);
                assert_eq!(structural, eq12, "divergence at nodes={nodes} ports={ports}");
            }
        }
    }

    #[test]
    fn capacity_covers_nodes() {
        for ports in [8u32, 24] {
            for nodes in [1usize, 5, 24, 25, 200, 256, 288, 289, 5000] {
                let ft = FatTree::new(nodes, sw(ports)).unwrap();
                assert!(ft.capacity() >= nodes as u128);
                if ft.stages() > 1 {
                    // d is minimal: one fewer stage must not suffice.
                    let pr = ports as u128;
                    let smaller = pr * (pr / 2).pow(ft.stages() - 2);
                    assert!(smaller < nodes as u128, "d not minimal for nodes={nodes}");
                }
            }
        }
    }

    #[test]
    fn traversals_depend_on_pod_locality() {
        let ft = FatTree::new(16, sw(8)).unwrap(); // D = 4
        assert_eq!(ft.switch_traversals(0, 0).unwrap(), 0);
        assert_eq!(ft.switch_traversals(0, 3).unwrap(), 1, "same leaf switch");
        assert_eq!(ft.switch_traversals(0, 4).unwrap(), 3, "crosses the root");
        assert_eq!(ft.switch_traversals(0, 15).unwrap(), 3);
        assert!(ft.switch_traversals(0, 16).is_err());
    }

    #[test]
    fn three_stage_tree_traversals() {
        // ports=4 => D=2, capacity(3) = 4*2*2 = 16.
        let ft = FatTree::new(16, sw(4)).unwrap();
        assert_eq!(ft.stages(), 3);
        assert_eq!(ft.switch_traversals(0, 1).unwrap(), 1); // same leaf
        assert_eq!(ft.switch_traversals(0, 2).unwrap(), 3); // stage-2 pod (block 4)
        assert_eq!(ft.switch_traversals(0, 5).unwrap(), 5); // root
        assert_eq!(ft.worst_case_switch_traversals(), 5);
    }

    #[test]
    fn mean_traversals_below_worst_case() {
        for (nodes, ports) in [(16usize, 8u32), (256, 24), (64, 8)] {
            let ft = FatTree::new(nodes, sw(ports)).unwrap();
            let mean = ft.mean_switch_traversals();
            assert!(mean > 0.0);
            assert!(mean <= ft.worst_case_switch_traversals() as f64 + 1e-12);
        }
    }

    #[test]
    fn mean_traversals_exact_small_case() {
        // 4 nodes, D=2 (ports 4): leaves {0,1},{2,3}, d=1? capacity(1)=4
        // => single stage! Use 8 nodes: d=2. Leaf pods {0,1},{2,3},...
        let ft = FatTree::new(8, sw(4)).unwrap();
        assert_eq!(ft.stages(), 2);
        // Ordered pairs: 8*7=56. Same-leaf pairs: 4 pods * 2*1 = 8 -> 1
        // switch. Other 48 pairs -> 3 switches.
        let expect = (8.0 * 1.0 + 48.0 * 3.0) / 56.0;
        assert!((ft.mean_switch_traversals() - expect).abs() < 1e-12);
    }

    #[test]
    fn mean_traversals_brute_force_cross_check() {
        for (nodes, ports) in [(8usize, 4u32), (16, 8), (12, 8), (16, 4), (30, 8)] {
            let ft = FatTree::new(nodes, sw(ports)).unwrap();
            let mut acc = 0.0;
            let mut count = 0.0;
            for a in 0..nodes {
                for b in 0..nodes {
                    if a != b {
                        acc += ft.switch_traversals(a, b).unwrap() as f64;
                        count += 1.0;
                    }
                }
            }
            let brute = acc / count;
            assert!(
                (ft.mean_switch_traversals() - brute).abs() < 1e-9,
                "mismatch for nodes={nodes} ports={ports}: {} vs {brute}",
                ft.mean_switch_traversals()
            );
        }
    }

    #[test]
    fn theorem1_full_bisection_bandwidth_via_max_flow() {
        // Figure 3 instance: bisection width must be N/2 = 8.
        let ft = FatTree::new(16, sw(8)).unwrap();
        assert_eq!(ft.build_graph().natural_bisection_width(), 8);
        // Two-stage 32-node tree on 8-port switches: N/2 = 16.
        let ft = FatTree::new(32, sw(8)).unwrap();
        assert_eq!(ft.stages(), 2);
        assert_eq!(ft.build_graph().natural_bisection_width(), 16);
        // Three-stage 16-node tree on 4-port switches: N/2 = 8.
        let ft = FatTree::new(16, sw(4)).unwrap();
        assert_eq!(ft.stages(), 3);
        assert_eq!(ft.build_graph().natural_bisection_width(), 8);
    }

    #[test]
    fn graph_is_connected() {
        for (nodes, ports) in [(16usize, 8u32), (256, 24), (16, 4), (30, 8), (7, 24)] {
            let ft = FatTree::new(nodes, sw(ports)).unwrap();
            assert!(ft.build_graph().graph().is_connected(), "nodes={nodes} ports={ports}");
        }
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(FatTree::new(0, sw(8)).is_err());
        assert!(FatTree::new(3, sw(2)).is_err(), "2-port switch cannot scale");
        assert!(FatTree::new(2, sw(2)).is_ok());
    }
}
