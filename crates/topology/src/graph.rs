//! A small undirected-graph kernel: adjacency lists, BFS shortest paths,
//! connectivity, and max-flow (Dinic's algorithm).
//!
//! Used to *verify* the structural claims of the paper — Proposition 1
//! (switch counts), Theorem 1 (full bisection bandwidth of the fat-tree)
//! and the bisection width of 1 for the linear array — on explicitly
//! constructed topology graphs, rather than trusting the closed forms.

use std::collections::VecDeque;

/// An undirected multigraph with unit-capacity edges.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: Vec<Vec<usize>>, // adjacency[v] = indices into `edges`
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph { adjacency: vec![Vec::new(); n], edges: Vec::new() }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges (parallel edges counted separately).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge; parallel edges are allowed (a trunk of
    /// `k` links is `k` parallel edges).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the edge is a loop.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.vertex_count() && v < self.vertex_count(), "vertex out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        let id = self.edges.len();
        self.edges.push((u, v));
        self.adjacency[u].push(id);
        self.adjacency[v].push(id);
    }

    /// Returns all edges as `(u, v)` pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Iterator over the neighbours of `v` (with multiplicity).
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency[v].iter().map(move |&e| {
            let (a, b) = self.edges[e];
            if a == v {
                b
            } else {
                a
            }
        })
    }

    /// BFS distances (in hops) from `src`; `None` for unreachable
    /// vertices.
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.vertex_count()];
        let mut queue = VecDeque::new();
        dist[src] = Some(0);
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let d = dist[v].expect("queued vertices have distances");
            for w in self.neighbors(v).collect::<Vec<_>>() {
                if dist[w].is_none() {
                    dist[w] = Some(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// True when every vertex is reachable from vertex 0 (or the graph is
    /// empty).
    pub fn is_connected(&self) -> bool {
        if self.vertex_count() == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(Option::is_some)
    }

    /// Maximum flow between `source` and `sink` treating every undirected
    /// edge as capacity `1` in each direction (Dinic's algorithm). By
    /// max-flow/min-cut this equals the minimum number of edges whose
    /// removal disconnects `source` from `sink`.
    pub fn max_flow(&self, source: usize, sink: usize) -> usize {
        let mut net = FlowNetwork::new(self.vertex_count());
        for &(u, v) in &self.edges {
            net.add_undirected_edge(u, v, 1);
        }
        net.max_flow(source, sink)
    }

    /// Minimum number of edges separating vertex set `a` from vertex set
    /// `b` (the cut width between the two sides). Computed by adding a
    /// super-source/super-sink with infinite-capacity attachments and
    /// running max-flow.
    ///
    /// # Panics
    ///
    /// Panics if the sets overlap or either is empty.
    pub fn min_cut_between_sets(&self, a: &[usize], b: &[usize]) -> usize {
        assert!(!a.is_empty() && !b.is_empty(), "cut sets must be non-empty");
        assert!(a.iter().all(|x| !b.contains(x)), "cut sets must be disjoint");
        let n = self.vertex_count();
        let (s, t) = (n, n + 1);
        let mut net = FlowNetwork::new(n + 2);
        for &(u, v) in &self.edges {
            net.add_undirected_edge(u, v, 1);
        }
        let inf = self.edges.len() + 1;
        for &v in a {
            net.add_directed_edge(s, v, inf);
        }
        for &v in b {
            net.add_directed_edge(v, t, inf);
        }
        net.max_flow(s, t)
    }
}

/// Dinic max-flow over an explicit residual network.
struct FlowNetwork {
    // Edge list representation: to[i], cap[i]; reverse edge is i^1.
    to: Vec<usize>,
    cap: Vec<usize>,
    head: Vec<Vec<usize>>,
}

impl FlowNetwork {
    fn new(n: usize) -> Self {
        FlowNetwork { to: Vec::new(), cap: Vec::new(), head: vec![Vec::new(); n] }
    }

    fn add_directed_edge(&mut self, u: usize, v: usize, c: usize) {
        self.head[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.head[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(0);
    }

    /// An undirected unit edge is a pair of opposite directed edges that
    /// share residual capacity symmetrically: cap c both ways.
    fn add_undirected_edge(&mut self, u: usize, v: usize, c: usize) {
        self.head[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.head[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(c);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1; self.head.len()];
        let mut q = VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &e in &self.head[v] {
                if self.cap[e] > 0 && level[self.to[e]] < 0 {
                    level[self.to[e]] = level[v] + 1;
                    q.push_back(self.to[e]);
                }
            }
        }
        if level[t] < 0 {
            None
        } else {
            Some(level)
        }
    }

    fn dfs_augment(
        &mut self,
        v: usize,
        t: usize,
        pushed: usize,
        level: &[i32],
        iter: &mut [usize],
    ) -> usize {
        if v == t {
            return pushed;
        }
        while iter[v] < self.head[v].len() {
            let e = self.head[v][iter[v]];
            let w = self.to[e];
            if self.cap[e] > 0 && level[w] == level[v] + 1 {
                let d = self.dfs_augment(w, t, pushed.min(self.cap[e]), level, iter);
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> usize {
        let mut flow = 0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.head.len()];
            loop {
                let f = self.dfs_augment(s, t, usize::MAX, &level, &mut iter);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!g.is_connected());
        assert_eq!(g.bfs_distances(0)[2], None);
    }

    #[test]
    fn max_flow_on_path_is_one() {
        let g = path_graph(6);
        assert_eq!(g.max_flow(0, 5), 1);
    }

    #[test]
    fn max_flow_counts_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.max_flow(0, 1), 3);
    }

    #[test]
    fn max_flow_on_cycle_is_two() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        assert_eq!(g.max_flow(0, 2), 2);
    }

    #[test]
    fn max_flow_classic_diamond() {
        // Two vertex-disjoint paths of length 2 plus a cross edge.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(1, 2);
        assert_eq!(g.max_flow(0, 3), 2);
    }

    #[test]
    fn min_cut_between_sets_on_barbell() {
        // Two triangles joined by a single bridge: cut = 1.
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_edge(u, v);
        }
        assert_eq!(g.min_cut_between_sets(&[0, 1, 2], &[3, 4, 5]), 1);
    }

    #[test]
    fn min_cut_complete_bipartite() {
        // K_{2,3}: cutting {0,1} from {2,3,4} requires all 6 edges.
        let mut g = Graph::new(5);
        for u in 0..2 {
            for v in 2..5 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(g.min_cut_between_sets(&[0, 1], &[2, 3, 4]), 6);
    }

    #[test]
    fn degree_and_neighbors() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 1); // parallel
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 2);
        let mut n: Vec<usize> = g.neighbors(0).collect();
        n.sort_unstable();
        assert_eq!(n, vec![1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn rejects_overlapping_cut_sets() {
        let g = path_graph(3);
        g.min_cut_between_sets(&[0, 1], &[1, 2]);
    }
}
