//! k-ary n-cube topologies: rings, 2-D/3-D tori and hypercubes.
//!
//! The paper's related work analyses k-ary n-cubes with dimension-order
//! routing (its ref. [20], Sarbazi-Azad et al.); its future work calls
//! for "modeling of communication networks with technology
//! heterogeneity". This module supplies those direct networks as a
//! third architecture family, with the same closed-form +
//! explicit-graph double bookkeeping the fat-tree and linear array get:
//! node count `k^n`, diameter `n·⌊k/2⌋`, exact mean dimension-order
//! hop counts, bisection width `2·k^{n−1}` (even `k`, `k > 2`), all
//! verified against BFS/max-flow on the constructed graph.

use crate::error::TopologyError;
use crate::graph::Graph;

/// A k-ary n-cube: `n` dimensions of `k` nodes each with wraparound
/// links (a hypercube when `k = 2`, a ring when `n = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KaryNCube {
    radix: u32,
    dimensions: u32,
}

impl KaryNCube {
    /// Creates a k-ary n-cube description.
    ///
    /// # Errors
    ///
    /// `radix ≥ 2`, `dimensions ≥ 1`, and the node count `k^n` must fit
    /// in a `usize` (≤ 2³¹ here, plenty for simulation scale).
    pub fn new(radix: u32, dimensions: u32) -> Result<Self, TopologyError> {
        if radix < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "radix",
                reason: "k-ary n-cube needs k >= 2",
            });
        }
        if dimensions == 0 {
            return Err(TopologyError::InvalidParameter {
                name: "dimensions",
                reason: "k-ary n-cube needs n >= 1",
            });
        }
        let nodes = (radix as u128).checked_pow(dimensions);
        match nodes {
            Some(n) if n <= (1 << 31) => Ok(KaryNCube { radix, dimensions }),
            _ => Err(TopologyError::InvalidParameter {
                name: "dimensions",
                reason: "k^n exceeds the supported node count",
            }),
        }
    }

    /// The hypercube of dimension `n` (2-ary n-cube).
    pub fn hypercube(dimensions: u32) -> Result<Self, TopologyError> {
        Self::new(2, dimensions)
    }

    /// Radix `k`.
    #[inline]
    pub fn radix(&self) -> u32 {
        self.radix
    }

    /// Dimension count `n`.
    #[inline]
    pub fn dimensions(&self) -> u32 {
        self.dimensions
    }

    /// Node count `k^n`.
    pub fn nodes(&self) -> usize {
        (self.radix as usize).pow(self.dimensions)
    }

    /// Decomposes a node id into its `n` digits (least-significant
    /// dimension first).
    fn digits(&self, node: usize) -> Vec<u32> {
        let k = self.radix as usize;
        let mut digits = Vec::with_capacity(self.dimensions as usize);
        let mut v = node;
        for _ in 0..self.dimensions {
            digits.push((v % k) as u32);
            v /= k;
        }
        digits
    }

    /// Per-dimension ring distance between digit values `a` and `b`:
    /// `min(|a−b|, k−|a−b|)`.
    fn ring_distance(&self, a: u32, b: u32) -> u32 {
        let d = a.abs_diff(b);
        d.min(self.radix - d)
    }

    /// Dimension-order-routing hop count between two nodes (sum of
    /// per-dimension ring distances).
    ///
    /// # Errors
    ///
    /// [`TopologyError::NodeOutOfRange`] for invalid node ids.
    pub fn hop_count(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        let n = self.nodes();
        for &v in &[a, b] {
            if v >= n {
                return Err(TopologyError::NodeOutOfRange { index: v, nodes: n });
            }
        }
        let (da, db) = (self.digits(a), self.digits(b));
        Ok(da.iter().zip(&db).map(|(&x, &y)| self.ring_distance(x, y)).sum())
    }

    /// Diameter `n·⌊k/2⌋`.
    pub fn diameter(&self) -> u32 {
        self.dimensions * (self.radix / 2)
    }

    /// Exact mean hop count over ordered pairs of **distinct** nodes
    /// under uniform traffic.
    ///
    /// Derivation: per dimension, the mean ring distance over all `k²`
    /// ordered digit pairs is `k/4` for even `k` and `(k²−1)/(4k)` for
    /// odd `k`; dimensions are independent, and conditioning on
    /// `src ≠ dst` rescales by `k^n/(k^n − 1)`.
    pub fn mean_hop_count(&self) -> f64 {
        let k = self.radix as f64;
        let per_dim =
            if self.radix.is_multiple_of(2) { k / 4.0 } else { (k * k - 1.0) / (4.0 * k) };
        let n = self.nodes() as f64;
        self.dimensions as f64 * per_dim * n / (n - 1.0)
    }

    /// Number of (bidirectional) links: `n·k^n` for `k > 2` (two ring
    /// neighbours per dimension, halved for double counting), and
    /// `n·k^n/2` for `k = 2` (the wrap link coincides with the direct
    /// link).
    pub fn link_count(&self) -> usize {
        let nodes = self.nodes();
        let n = self.dimensions as usize;
        if self.radix == 2 {
            n * nodes / 2
        } else {
            n * nodes
        }
    }

    /// Closed-form bisection width: `2·k^{n−1}` for even `k > 2`,
    /// `k^{n−1}` for the hypercube (`k = 2`). (Odd `k` has a more
    /// involved form, `(k+1)·k^{n−1}/2` rounded by parity — we report
    /// the even-`k` and hypercube cases and leave odd radixes to the
    /// max-flow verifier.)
    pub fn bisection_width(&self) -> Option<usize> {
        let kn1 = (self.radix as usize).pow(self.dimensions - 1);
        match self.radix {
            2 => Some(kn1),
            k if k % 2 == 0 => Some(2 * kn1),
            _ => None,
        }
    }

    /// Builds the explicit undirected graph (vertices = nodes, one edge
    /// per physical link).
    pub fn build_graph(&self) -> Graph {
        let nodes = self.nodes();
        let k = self.radix as usize;
        let mut g = Graph::new(nodes);
        let mut stride = 1usize;
        for _dim in 0..self.dimensions {
            for v in 0..nodes {
                let digit = (v / stride) % k;
                // Link to the +1 neighbour in this dimension; the wrap
                // link is added by the digit k-1 node. For k = 2 the
                // "+1" and "wrap" links coincide — add only one.
                if digit + 1 < k {
                    g.add_edge(v, v + stride);
                } else if k > 2 {
                    g.add_edge(v, v - (k - 1) * stride);
                }
            }
            stride *= k;
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisection;

    #[test]
    fn construction_and_counts() {
        let t = KaryNCube::new(4, 2).unwrap(); // 4x4 torus
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.link_count(), 32);
        let h = KaryNCube::hypercube(3).unwrap();
        assert_eq!(h.nodes(), 8);
        assert_eq!(h.diameter(), 3);
        assert_eq!(h.link_count(), 12);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(KaryNCube::new(1, 3).is_err());
        assert!(KaryNCube::new(2, 0).is_err());
        assert!(KaryNCube::new(2, 40).is_err(), "2^40 nodes is out of scope");
    }

    #[test]
    fn hop_count_examples() {
        let t = KaryNCube::new(4, 2).unwrap();
        // Node ids: digit0 = column, digit1 = row (k=4).
        assert_eq!(t.hop_count(0, 0).unwrap(), 0);
        assert_eq!(t.hop_count(0, 1).unwrap(), 1);
        assert_eq!(t.hop_count(0, 3).unwrap(), 1, "wraparound");
        assert_eq!(t.hop_count(0, 5).unwrap(), 2); // (1,1)
        assert_eq!(t.hop_count(0, 10).unwrap(), 4, "opposite corner = diameter");
        assert!(t.hop_count(0, 16).is_err());
    }

    #[test]
    fn hop_count_matches_bfs_on_graph() {
        for (k, n) in [(2u32, 3u32), (3, 2), (4, 2), (5, 2), (4, 3)] {
            let cube = KaryNCube::new(k, n).unwrap();
            let g = cube.build_graph();
            assert!(g.is_connected());
            let dist = g.bfs_distances(0);
            for (v, d) in dist.iter().enumerate().take(cube.nodes()) {
                assert_eq!(
                    d.unwrap() as u32,
                    cube.hop_count(0, v).unwrap(),
                    "k={k} n={n} node {v}"
                );
            }
        }
    }

    #[test]
    fn mean_hop_count_matches_brute_force() {
        for (k, n) in [(2u32, 3u32), (3, 2), (4, 2), (5, 2)] {
            let cube = KaryNCube::new(k, n).unwrap();
            let nodes = cube.nodes();
            let mut acc = 0.0;
            for a in 0..nodes {
                for b in 0..nodes {
                    if a != b {
                        acc += cube.hop_count(a, b).unwrap() as f64;
                    }
                }
            }
            let brute = acc / (nodes * (nodes - 1)) as f64;
            assert!(
                (cube.mean_hop_count() - brute).abs() < 1e-12,
                "k={k} n={n}: {} vs {brute}",
                cube.mean_hop_count()
            );
        }
    }

    #[test]
    fn degrees_are_regular() {
        let t = KaryNCube::new(4, 2).unwrap();
        let g = t.build_graph();
        for v in 0..t.nodes() {
            assert_eq!(g.degree(v), 4, "2 links per dimension");
        }
        let h = KaryNCube::hypercube(4).unwrap();
        let hg = h.build_graph();
        for v in 0..h.nodes() {
            assert_eq!(hg.degree(v), 4, "one link per dimension");
        }
        assert_eq!(g.edge_count(), t.link_count());
        assert_eq!(hg.edge_count(), h.link_count());
    }

    #[test]
    fn ring_is_the_n1_special_case() {
        let ring = KaryNCube::new(8, 1).unwrap();
        assert_eq!(ring.nodes(), 8);
        assert_eq!(ring.diameter(), 4);
        assert_eq!(ring.bisection_width(), Some(2));
        let g = ring.build_graph();
        assert_eq!(g.edge_count(), 8);
        // Natural-split cut of a ring = 2.
        assert_eq!(bisection::natural_split_cut(&g, 8), 2);
    }

    #[test]
    fn bisection_closed_form_verified_by_max_flow() {
        // Even radix tori: width 2 k^{n-1}; hypercubes: k^{n-1}.
        for (k, n) in [(4u32, 2u32), (2, 3), (2, 4), (6, 2)] {
            let cube = KaryNCube::new(k, n).unwrap();
            let g = cube.build_graph();
            let expect = cube.bisection_width().expect("even radix");
            // The natural index split halves the highest dimension,
            // which is an optimal bisection for these symmetric tori.
            let cut = bisection::natural_split_cut(&g, cube.nodes());
            assert_eq!(cut, expect, "k={k} n={n}");
        }
    }

    #[test]
    fn hypercube_bisection_by_exhaustive_search() {
        let h = KaryNCube::hypercube(3).unwrap();
        let g = h.build_graph();
        assert_eq!(bisection::exhaustive_bisection_width(&g, 8), 4);
    }

    #[test]
    fn torus_beats_linear_array_in_bisection() {
        use crate::linear_array::LinearArray;
        use crate::switch::SwitchFabric;
        let torus = KaryNCube::new(4, 2).unwrap(); // 16 nodes, width 8
        let array = LinearArray::new(16, SwitchFabric::new(4, 10.0).unwrap()).unwrap();
        assert!(torus.bisection_width().unwrap() > array.bisection_width());
    }
}
