//! Empirical latency-matrix topology source.
//!
//! The paper fixes an idealised two-level hierarchy (every intra-cluster
//! hop costs the ICN1 technology, every inter-cluster hop the
//! ECN1/ICN2 technologies). Real deployments are observed the other way
//! around: what you *measure* is an `n × n` node-to-node latency matrix,
//! and the cluster structure has to be inferred from it. This module
//! provides the matrix side of that inversion:
//!
//! * [`LatencyMatrix`] — a dense, validated, symmetric matrix of one-way
//!   small-message latencies (µs), importable from strict CSV.
//! * [`SyntheticSpec`] / [`SyntheticMatrix`] — a seeded WAN/LAN
//!   generator that plants a known cluster partition with clamp-normal
//!   intra- and inter-cluster latency bands. The synthetic source is
//!   *implicit*: per-pair values are recomputed on demand from a
//!   SplitMix64 hash of `(seed, pair)`, so a 100k-node topology costs
//!   O(n) memory while agreeing bit-exactly with the dense
//!   materialisation [`SyntheticSpec::generate`].
//! * [`LatencySource`] — the sampling trait the identification pass
//!   (`hmcs_core::identify`) and the sharded simulator consume, unifying
//!   dense and implicit sources.
//!
//! All randomness is deterministic: the same spec always produces the
//! same matrix on every platform (the sampler uses only `ln`, `sqrt`
//! and `cos`, which are correctly-rounded-enough for reproducible
//! `f64` streams in practice, and the goldens compare with relative
//! tolerance).

use std::error::Error;
use std::fmt;

/// Upper bound on nodes for dense materialisation (`generate`,
/// `from_rows`, CSV import): a dense `f64` matrix at this size is
/// 32 MiB. Larger systems must use the implicit [`SyntheticMatrix`].
pub const MAX_DENSE_NODES: usize = 2048;

/// Relative tolerance used by [`LatencyMatrix::parse_csv`] for the
/// symmetry check: `|a_ij - a_ji|` may not exceed this fraction of the
/// pair mean. Measured matrices are rarely exactly symmetric (forward
/// and reverse probes race), so a strict-but-nonzero default is used.
pub const DEFAULT_SYMMETRY_TOLERANCE: f64 = 0.05;

/// Typed failure modes of matrix construction and CSV import.
///
/// Every variant carries enough context (1-based row/column) to point
/// at the offending cell; hostile inputs must map to one of these, never
/// to a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Fewer than two nodes (0×0 and 1×1 matrices carry no pairwise
    /// structure to identify).
    TooSmall {
        /// Number of nodes found.
        nodes: usize,
    },
    /// More nodes than [`MAX_DENSE_NODES`] in a dense construction.
    TooLarge {
        /// Number of nodes requested.
        nodes: usize,
        /// The dense limit.
        limit: usize,
    },
    /// A row with a different cell count than the first row.
    RaggedRow {
        /// 1-based row number.
        row: usize,
        /// Cells expected (matrix order).
        expected: usize,
        /// Cells found.
        got: usize,
    },
    /// A cell that failed to parse as a number.
    BadCell {
        /// 1-based row number.
        row: usize,
        /// 1-based column number.
        col: usize,
    },
    /// A NaN or infinite cell.
    NonFinite {
        /// 1-based row number.
        row: usize,
        /// 1-based column number.
        col: usize,
    },
    /// An off-diagonal cell that is not strictly positive, or a
    /// negative diagonal cell.
    NonPositive {
        /// 1-based row number.
        row: usize,
        /// 1-based column number.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A pair whose forward and reverse latencies disagree beyond the
    /// symmetry tolerance.
    Asymmetric {
        /// 1-based row of the pair.
        row: usize,
        /// 1-based column of the pair.
        col: usize,
        /// Relative disagreement `|a_ij - a_ji| / mean`.
        relative_error: f64,
        /// The tolerance that was exceeded.
        tolerance: f64,
    },
    /// An invalid generator parameter.
    InvalidSpec {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::TooSmall { nodes } => {
                write!(f, "latency matrix needs at least 2 nodes, got {nodes}")
            }
            MatrixError::TooLarge { nodes, limit } => write!(
                f,
                "dense latency matrix limited to {limit} nodes, got {nodes} \
                 (use the implicit synthetic source for larger systems)"
            ),
            MatrixError::RaggedRow { row, expected, got } => {
                write!(f, "row {row} has {got} cells, expected {expected}")
            }
            MatrixError::BadCell { row, col } => {
                write!(f, "cell ({row},{col}) is not a number")
            }
            MatrixError::NonFinite { row, col } => {
                write!(f, "cell ({row},{col}) is NaN or infinite")
            }
            MatrixError::NonPositive { row, col, value } => write!(
                f,
                "cell ({row},{col}) = {value} must be positive off the \
                 diagonal and non-negative on it"
            ),
            MatrixError::Asymmetric { row, col, relative_error, tolerance } => write!(
                f,
                "cells ({row},{col})/({col},{row}) disagree by {:.1}% \
                 (tolerance {:.1}%)",
                relative_error * 100.0,
                tolerance * 100.0
            ),
            MatrixError::InvalidSpec { name, reason } => {
                write!(f, "invalid generator parameter {name}: {reason}")
            }
        }
    }
}

impl Error for MatrixError {}

/// A source of pairwise one-way latencies for `n` nodes.
///
/// Implementations must be symmetric (`latency_us(a, b) ==
/// latency_us(b, a)`) and defined for every off-diagonal pair; the
/// diagonal is unspecified and never queried by consumers.
pub trait LatencySource {
    /// Number of nodes in the topology.
    fn nodes(&self) -> usize;
    /// One-way latency between two distinct nodes, in microseconds.
    fn latency_us(&self, a: usize, b: usize) -> f64;
}

// ---------------------------------------------------------------------------
// Seeded sampling primitives (self-contained: this crate has no deps).
// ---------------------------------------------------------------------------

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a high-quality 64-bit mix (Steele et al.).
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal SplitMix64 sequential stream (used for shuffling).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (n > 0) by 128-bit multiply.
    #[inline]
    fn below(&mut self, n: usize) -> usize {
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

/// Maps a u64 to the open unit interval (0, 1).
#[inline]
fn unit_open(v: u64) -> f64 {
    ((v >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0) // 2^-53
}

/// A clamp-normal latency band: samples are `N(mean, std)` clamped to
/// `mean ± CLAMP_SIGMAS·std`, mirroring the clamped ping-latency
/// distributions used by measured-matrix simulators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBand {
    /// Band centre, µs.
    pub mean_us: f64,
    /// Band standard deviation before clamping, µs.
    pub std_us: f64,
}

/// Clamp width in standard deviations: samples outside
/// `mean ± 2.5σ` are clipped to the boundary.
pub const CLAMP_SIGMAS: f64 = 2.5;

impl LatencyBand {
    /// Creates a band after validating `mean > 0`, `0 ≤ std ≤ mean/3`
    /// (the std ceiling keeps the clamped band strictly positive).
    pub fn new(mean_us: f64, std_us: f64) -> Result<Self, MatrixError> {
        if !mean_us.is_finite() || mean_us <= 0.0 {
            return Err(MatrixError::InvalidSpec {
                name: "mean_us",
                reason: "must be finite and positive",
            });
        }
        if !std_us.is_finite() || std_us < 0.0 || std_us > mean_us / 3.0 {
            return Err(MatrixError::InvalidSpec {
                name: "std_us",
                reason: "must be finite, non-negative and at most mean/3",
            });
        }
        Ok(LatencyBand { mean_us, std_us })
    }

    /// Lowest value the clamped band can produce.
    pub fn min_us(&self) -> f64 {
        self.mean_us - CLAMP_SIGMAS * self.std_us
    }

    /// Highest value the clamped band can produce.
    pub fn max_us(&self) -> f64 {
        self.mean_us + CLAMP_SIGMAS * self.std_us
    }

    /// Deterministic clamp-normal sample from a 64-bit pair key.
    #[inline]
    fn sample(&self, key: u64) -> f64 {
        if self.std_us == 0.0 {
            return self.mean_us;
        }
        let u1 = unit_open(mix64(key));
        let u2 = unit_open(mix64(key ^ 0xA5A5_A5A5_A5A5_A5A5));
        // Box–Muller; one deviate per pair is enough.
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean_us + self.std_us * z).clamp(self.min_us(), self.max_us())
    }
}

// ---------------------------------------------------------------------------
// Dense matrix
// ---------------------------------------------------------------------------

/// A dense, validated, symmetric latency matrix.
///
/// Stored row-major; ingestion symmetrises each pair to the mean of the
/// forward and reverse measurements after the tolerance check, so
/// [`LatencySource::latency_us`] is exactly symmetric.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyMatrix {
    n: usize,
    cells: Vec<f64>,
}

impl LatencyMatrix {
    /// Builds a matrix from explicit rows, validating shape, finiteness,
    /// positivity and symmetry (see [`MatrixError`]).
    pub fn from_rows(rows: &[Vec<f64>], symmetry_tolerance: f64) -> Result<Self, MatrixError> {
        let n = rows.len();
        if n < 2 {
            return Err(MatrixError::TooSmall { nodes: n });
        }
        if n > MAX_DENSE_NODES {
            return Err(MatrixError::TooLarge { nodes: n, limit: MAX_DENSE_NODES });
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(MatrixError::RaggedRow { row: i + 1, expected: n, got: row.len() });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(MatrixError::NonFinite { row: i + 1, col: j + 1 });
                }
                let bad = if i == j { v < 0.0 } else { v <= 0.0 };
                if bad {
                    return Err(MatrixError::NonPositive { row: i + 1, col: j + 1, value: v });
                }
            }
        }
        let mut cells = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let fwd = rows[i][j];
                let rev = rows[j][i];
                let mean = 0.5 * (fwd + rev);
                let rel = (fwd - rev).abs() / mean;
                if rel > symmetry_tolerance {
                    return Err(MatrixError::Asymmetric {
                        row: i + 1,
                        col: j + 1,
                        relative_error: rel,
                        tolerance: symmetry_tolerance,
                    });
                }
                cells[i * n + j] = mean;
                cells[j * n + i] = mean;
            }
        }
        Ok(LatencyMatrix { n, cells })
    }

    /// Parses strict CSV with the default symmetry tolerance
    /// ([`DEFAULT_SYMMETRY_TOLERANCE`]).
    pub fn parse_csv(text: &str) -> Result<Self, MatrixError> {
        Self::parse_csv_with(text, DEFAULT_SYMMETRY_TOLERANCE)
    }

    /// Parses strict CSV: one row per line, comma-separated numeric
    /// cells, no header, blank lines ignored. Every structural defect
    /// maps to a typed [`MatrixError`].
    pub fn parse_csv_with(text: &str, symmetry_tolerance: f64) -> Result<Self, MatrixError> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut expected: Option<usize> = None;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let row_no = rows.len() + 1;
            let mut row = Vec::new();
            for (c, tok) in line.split(',').enumerate() {
                let v: f64 = tok
                    .trim()
                    .parse()
                    .map_err(|_| MatrixError::BadCell { row: row_no, col: c + 1 })?;
                row.push(v);
            }
            if let Some(width) = expected {
                if row.len() != width {
                    return Err(MatrixError::RaggedRow {
                        row: row_no,
                        expected: width,
                        got: row.len(),
                    });
                }
            } else {
                expected = Some(row.len());
            }
            rows.push(row);
        }
        // A non-square sheet (row count != column count) reads as a
        // ragged matrix: the first short/long dimension is reported.
        if let Some(width) = expected {
            if rows.len() != width && rows.len() >= 2 {
                return Err(MatrixError::RaggedRow {
                    row: rows.len(),
                    expected: rows.len(),
                    got: width,
                });
            }
        }
        Self::from_rows(&rows, symmetry_tolerance)
    }

    /// Renders the matrix as CSV (row-major, `%.6` precision), the
    /// inverse of [`LatencyMatrix::parse_csv`] up to rounding.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.n * self.n * 8);
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:.6}", self.cells[i * self.n + j]));
            }
            out.push('\n');
        }
        out
    }

    /// Cell accessor (symmetrised value; diagonal is 0 for generated
    /// matrices, the imported value's pair mean otherwise).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        self.cells[i * self.n + j]
    }
}

impl LatencySource for LatencyMatrix {
    fn nodes(&self) -> usize {
        self.n
    }

    fn latency_us(&self, a: usize, b: usize) -> f64 {
        self.get(a, b)
    }
}

// ---------------------------------------------------------------------------
// Synthetic WAN/LAN generator
// ---------------------------------------------------------------------------

/// Specification of a synthetic WAN/LAN latency matrix with a planted
/// cluster partition.
///
/// Node-pair latencies are drawn from [`LatencyBand`]s: the `intra` band
/// for pairs inside the same planted cluster (LAN), the `inter` band for
/// cross-cluster pairs (WAN). With `shuffle` the node indices are
/// permuted by a seeded Fisher–Yates pass so planted clusters are not
/// contiguous index ranges (as in a real measured matrix).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Master seed; all per-pair values and the shuffle derive from it.
    pub seed: u64,
    /// Planted cluster sizes (cluster `c` gets `cluster_sizes[c]` nodes).
    pub cluster_sizes: Vec<usize>,
    /// Intra-cluster (LAN) latency band.
    pub intra: LatencyBand,
    /// Inter-cluster (WAN) latency band.
    pub inter: LatencyBand,
    /// Whether to permute node indices (hide the planted block layout).
    pub shuffle: bool,
}

impl SyntheticSpec {
    /// Uniform spec: `clusters` planted clusters of `nodes_per_cluster`
    /// nodes each.
    pub fn uniform(
        clusters: usize,
        nodes_per_cluster: usize,
        intra: LatencyBand,
        inter: LatencyBand,
        seed: u64,
    ) -> Self {
        SyntheticSpec {
            seed,
            cluster_sizes: vec![nodes_per_cluster; clusters],
            intra,
            inter,
            shuffle: true,
        }
    }

    /// Skewed spec: cluster sizes ramp linearly from
    /// `base·(1-skew)` to `base·(1+skew)` (minimum 1 node), modelling
    /// unequal site sizes. `skew` must lie in `[0, 1)`.
    pub fn skewed(
        clusters: usize,
        base_size: usize,
        skew: f64,
        intra: LatencyBand,
        inter: LatencyBand,
        seed: u64,
    ) -> Result<Self, MatrixError> {
        if !(0.0..1.0).contains(&skew) {
            return Err(MatrixError::InvalidSpec { name: "skew", reason: "must lie in [0, 1)" });
        }
        let sizes: Vec<usize> = (0..clusters)
            .map(|c| {
                let t = if clusters > 1 {
                    2.0 * (c as f64) / ((clusters - 1) as f64) - 1.0
                } else {
                    0.0
                };
                (((base_size as f64) * (1.0 + skew * t)).round() as usize).max(1)
            })
            .collect();
        Ok(SyntheticSpec { seed, cluster_sizes: sizes, intra, inter, shuffle: true })
    }

    /// Total nodes across all planted clusters.
    pub fn total_nodes(&self) -> usize {
        self.cluster_sizes.iter().sum()
    }

    /// Validates the spec: at least one cluster, every cluster
    /// non-empty, at least two nodes in total, and the WAN band centred
    /// strictly above the LAN band.
    pub fn validate(&self) -> Result<(), MatrixError> {
        if self.cluster_sizes.is_empty() || self.cluster_sizes.contains(&0) {
            return Err(MatrixError::InvalidSpec {
                name: "cluster_sizes",
                reason: "need at least one cluster and no empty clusters",
            });
        }
        if self.total_nodes() < 2 {
            return Err(MatrixError::TooSmall { nodes: self.total_nodes() });
        }
        if self.inter.mean_us <= self.intra.mean_us {
            return Err(MatrixError::InvalidSpec {
                name: "inter.mean_us",
                reason: "WAN band must be centred above the LAN band",
            });
        }
        Ok(())
    }

    /// Builds the implicit (O(n)-memory) source with its planted
    /// partition.
    pub fn source(&self) -> Result<SyntheticMatrix, MatrixError> {
        self.validate()?;
        let n = self.total_nodes();
        // Block layout: cluster c owns a contiguous run of labels...
        let mut cluster_of: Vec<u32> = Vec::with_capacity(n);
        for (c, &size) in self.cluster_sizes.iter().enumerate() {
            cluster_of.extend(std::iter::repeat_n(c as u32, size));
        }
        // ...optionally hidden by a seeded Fisher–Yates permutation of
        // the node indices.
        if self.shuffle {
            let mut rng = SplitMix64::new(mix64(self.seed ^ 0x5AFF_1E00));
            for i in (1..n).rev() {
                let j = rng.below(i + 1);
                cluster_of.swap(i, j);
            }
        }
        Ok(SyntheticMatrix { seed: self.seed, cluster_of, intra: self.intra, inter: self.inter })
    }

    /// Materialises the dense matrix (small systems only, see
    /// [`MAX_DENSE_NODES`]); bit-identical to sampling the implicit
    /// source cell by cell.
    pub fn generate(&self) -> Result<LatencyMatrix, MatrixError> {
        let src = self.source()?;
        let n = src.nodes();
        if n > MAX_DENSE_NODES {
            return Err(MatrixError::TooLarge { nodes: n, limit: MAX_DENSE_NODES });
        }
        let mut cells = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = src.latency_us(i, j);
                cells[i * n + j] = v;
                cells[j * n + i] = v;
            }
        }
        Ok(LatencyMatrix { n, cells })
    }
}

/// The implicit synthetic source: per-pair latencies recomputed on
/// demand from the seed, with O(n) memory (the shuffled
/// cluster-assignment vector).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticMatrix {
    seed: u64,
    cluster_of: Vec<u32>,
    intra: LatencyBand,
    inter: LatencyBand,
}

impl SyntheticMatrix {
    /// Planted cluster index of a node.
    pub fn cluster_of(&self, node: usize) -> usize {
        self.cluster_of[node] as usize
    }

    /// The planted partition in canonical form: each cluster's members
    /// sorted ascending, clusters ordered by their smallest member.
    pub fn partition(&self) -> Vec<Vec<usize>> {
        let clusters = self.cluster_of.iter().map(|&c| c as usize).max().unwrap_or(0) + 1;
        let mut part: Vec<Vec<usize>> = vec![Vec::new(); clusters];
        for (node, &c) in self.cluster_of.iter().enumerate() {
            part[c as usize].push(node);
        }
        // Members are pushed in ascending node order already; order the
        // clusters by first member for canonical comparison.
        part.sort_by_key(|members| members.first().copied().unwrap_or(usize::MAX));
        part
    }

    /// The intra-cluster band of the spec.
    pub fn intra_band(&self) -> LatencyBand {
        self.intra
    }

    /// The inter-cluster band of the spec.
    pub fn inter_band(&self) -> LatencyBand {
        self.inter
    }
}

impl LatencySource for SyntheticMatrix {
    fn nodes(&self) -> usize {
        self.cluster_of.len()
    }

    #[inline]
    fn latency_us(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a != b, "diagonal latency is undefined");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let band =
            if self.cluster_of[lo] == self.cluster_of[hi] { &self.intra } else { &self.inter };
        let key = mix64(self.seed) ^ (((lo as u64) << 32) | (hi as u64));
        band.sample(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bands() -> (LatencyBand, LatencyBand) {
        (LatencyBand::new(50.0, 4.0).unwrap(), LatencyBand::new(400.0, 30.0).unwrap())
    }

    #[test]
    fn generator_is_deterministic_and_symmetric() {
        let (intra, inter) = bands();
        let spec = SyntheticSpec::uniform(4, 8, intra, inter, 2005);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        for i in 0..a.nodes() {
            for j in 0..a.nodes() {
                if i != j {
                    assert_eq!(a.get(i, j), a.get(j, i));
                    assert!(a.get(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn dense_and_implicit_sources_agree_bit_exactly() {
        let (intra, inter) = bands();
        let spec = SyntheticSpec::uniform(3, 5, intra, inter, 77);
        let dense = spec.generate().unwrap();
        let implicit = spec.source().unwrap();
        for i in 0..dense.nodes() {
            for j in 0..dense.nodes() {
                if i != j {
                    assert_eq!(dense.get(i, j), implicit.latency_us(i, j));
                }
            }
        }
    }

    #[test]
    fn samples_stay_inside_clamped_bands() {
        let (intra, inter) = bands();
        let spec = SyntheticSpec::uniform(4, 16, intra, inter, 11);
        let src = spec.source().unwrap();
        for i in 0..src.nodes() {
            for j in (i + 1)..src.nodes() {
                let v = src.latency_us(i, j);
                let band = if src.cluster_of(i) == src.cluster_of(j) { intra } else { inter };
                assert!(v >= band.min_us() && v <= band.max_us(), "{v} outside band");
            }
        }
    }

    #[test]
    fn partition_is_canonical_and_covers_all_nodes() {
        let (intra, inter) = bands();
        let spec = SyntheticSpec::skewed(5, 10, 0.4, intra, inter, 9).unwrap();
        let src = spec.source().unwrap();
        let part = src.partition();
        assert_eq!(part.len(), 5);
        let mut seen = vec![false; src.nodes()];
        assert_eq!(part[0][0], 0, "first cluster starts at the smallest member");
        for members in &part {
            assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted");
            for &m in members {
                assert!(!seen[m]);
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn skewed_sizes_ramp_and_respect_minimum() {
        let (intra, inter) = bands();
        let spec = SyntheticSpec::skewed(4, 10, 0.5, intra, inter, 1).unwrap();
        assert_eq!(spec.cluster_sizes, vec![5, 8, 12, 15]);
        let tiny = SyntheticSpec::skewed(3, 1, 0.9, intra, inter, 1).unwrap();
        assert!(tiny.cluster_sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn shuffle_permutes_but_preserves_sizes() {
        let (intra, inter) = bands();
        let mut spec = SyntheticSpec::uniform(4, 8, intra, inter, 3);
        spec.shuffle = false;
        let plain = spec.source().unwrap();
        assert_eq!(plain.cluster_of(0), 0);
        assert_eq!(plain.cluster_of(31), 3);
        spec.shuffle = true;
        let shuffled = spec.source().unwrap();
        let mut sizes = [0usize; 4];
        for node in 0..32 {
            sizes[shuffled.cluster_of(node)] += 1;
        }
        assert_eq!(sizes, [8, 8, 8, 8]);
        assert_ne!(
            (0..32).map(|i| plain.cluster_of(i)).collect::<Vec<_>>(),
            (0..32).map(|i| shuffled.cluster_of(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generator_rejects_bad_specs() {
        let (intra, inter) = bands();
        let empty = SyntheticSpec { seed: 0, cluster_sizes: vec![], intra, inter, shuffle: false };
        assert!(matches!(empty.source(), Err(MatrixError::InvalidSpec { .. })));
        let inverted = SyntheticSpec::uniform(2, 4, inter, intra, 0);
        assert!(matches!(inverted.source(), Err(MatrixError::InvalidSpec { .. })));
        let one_node =
            SyntheticSpec { seed: 0, cluster_sizes: vec![1], intra, inter, shuffle: false };
        assert!(matches!(one_node.source(), Err(MatrixError::TooSmall { nodes: 1 })));
        assert!(matches!(
            LatencyBand::new(10.0, 5.0),
            Err(MatrixError::InvalidSpec { name: "std_us", .. })
        ));
        let huge = SyntheticSpec::uniform(64, 64, intra, inter, 0);
        assert!(matches!(huge.generate(), Err(MatrixError::TooLarge { .. })));
        assert!(huge.source().is_ok(), "implicit source has no dense limit");
    }

    // ----- satellite: hostile CSV inputs must fail typed, never panic -----

    #[test]
    fn csv_rejects_empty_and_single_cell() {
        assert!(matches!(LatencyMatrix::parse_csv(""), Err(MatrixError::TooSmall { nodes: 0 })));
        assert!(matches!(
            LatencyMatrix::parse_csv("0.0\n"),
            Err(MatrixError::TooSmall { nodes: 1 })
        ));
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let err = LatencyMatrix::parse_csv("0,1,2\n1,0\n2,1,0\n").unwrap_err();
        assert_eq!(err, MatrixError::RaggedRow { row: 2, expected: 3, got: 2 });
        // Square-width but short row count is also ragged.
        let err = LatencyMatrix::parse_csv("0,1,2\n1,0,3\n").unwrap_err();
        assert!(matches!(err, MatrixError::RaggedRow { .. }));
    }

    #[test]
    fn csv_rejects_nan_inf_and_garbage_cells() {
        let err = LatencyMatrix::parse_csv("0,NaN\n1,0\n").unwrap_err();
        assert_eq!(err, MatrixError::NonFinite { row: 1, col: 2 });
        let err = LatencyMatrix::parse_csv("0,inf\n1,0\n").unwrap_err();
        assert_eq!(err, MatrixError::NonFinite { row: 1, col: 2 });
        let err = LatencyMatrix::parse_csv("0,1\nfoo,0\n").unwrap_err();
        assert_eq!(err, MatrixError::BadCell { row: 2, col: 1 });
    }

    #[test]
    fn csv_rejects_negative_and_zero_off_diagonal() {
        let err = LatencyMatrix::parse_csv("0,-5\n-5,0\n").unwrap_err();
        assert!(matches!(err, MatrixError::NonPositive { row: 1, col: 2, .. }));
        let err = LatencyMatrix::parse_csv("0,0\n0,0\n").unwrap_err();
        assert!(matches!(err, MatrixError::NonPositive { .. }));
        let err = LatencyMatrix::parse_csv("-1,5\n5,0\n").unwrap_err();
        assert!(matches!(err, MatrixError::NonPositive { row: 1, col: 1, .. }));
    }

    #[test]
    fn csv_rejects_asymmetry_beyond_tolerance() {
        let err = LatencyMatrix::parse_csv("0,100\n150,0\n").unwrap_err();
        assert!(matches!(err, MatrixError::Asymmetric { row: 1, col: 2, .. }));
        // Within tolerance: accepted and symmetrised to the pair mean.
        let m = LatencyMatrix::parse_csv("0,100\n104,0\n").unwrap();
        assert_eq!(m.get(0, 1), 102.0);
        assert_eq!(m.get(1, 0), 102.0);
    }

    #[test]
    fn csv_round_trips_generated_matrices() {
        let (intra, inter) = bands();
        let spec = SyntheticSpec::uniform(3, 4, intra, inter, 42);
        let dense = spec.generate().unwrap();
        let reparsed = LatencyMatrix::parse_csv(&dense.to_csv()).unwrap();
        for i in 0..dense.nodes() {
            for j in 0..dense.nodes() {
                if i != j {
                    assert!((dense.get(i, j) - reparsed.get(i, j)).abs() < 1e-5);
                }
            }
        }
    }
}
