//! # hmcs-topology
//!
//! Interconnect-topology models for cluster systems, implementing §5 of
//! *Performance Analysis of Heterogeneous Multi-Cluster Systems*
//! (Javadi, Akbari & Abawajy, ICPPW 2005):
//!
//! * [`technology`] — link technologies (latency α, bandwidth 1/β) with
//!   the paper's Gigabit-Ethernet / Fast-Ethernet presets (Table 2).
//! * [`switch`] — the `Pr`-port switch-fabric building block.
//! * [`fat_tree`] — the non-blocking Multi-Stage Fat-Tree (§5.2):
//!   stage count (eq. 12), switch count (eq. 13 / Proposition 1),
//!   explicit graph construction, up/down hop counts, and the full
//!   bisection bandwidth property (Theorem 1).
//! * [`latmatrix`] — the empirical latency-matrix source: a seeded
//!   synthetic WAN/LAN generator with planted clusters, a strict CSV
//!   importer, and the [`latmatrix::LatencySource`] sampling trait the
//!   cluster-identification pass and the sharded simulator consume.
//! * [`kary_ncube`] — k-ary n-cubes (rings, tori, hypercubes), the
//!   direct-network family of the paper's ref. [20], provided for the
//!   technology-heterogeneity future-work extension.
//! * [`direct`] — transmission-time model for those direct networks,
//!   built on a bisection-generalised form of the paper's eq. 20.
//! * [`linear_array`] — the blocking linear switch array (§5.3):
//!   switch count (eq. 17), hop statistics (the `(k+1)/3` average of
//!   eq. 19, plus the exact distribution), bisection width 1.
//! * [`transmission`] — message transmission-time models
//!   (eqs. 10, 11, 18–21).
//! * [`graph`] + [`bisection`] — a small undirected-graph kernel with
//!   max-flow (Dinic) used to *verify* the bisection-width claims on the
//!   explicitly constructed topologies.
//!
//! Time unit: microseconds. Bandwidth unit: MB/s, which conveniently
//! equals bytes/µs.
//!
//! ```
//! use hmcs_topology::fat_tree::FatTree;
//! use hmcs_topology::switch::SwitchFabric;
//!
//! // The paper's Figure 3: 16 nodes on 8-port switches.
//! let ft = FatTree::new(16, SwitchFabric::new(8, 10.0).unwrap()).unwrap();
//! assert_eq!(ft.stages(), 2);
//! assert_eq!(ft.switch_count(), 6);
//! assert_eq!(ft.worst_case_switch_traversals(), 3); // 2d-1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisection;
pub mod direct;
pub mod error;
pub mod fat_tree;
pub mod graph;
pub mod kary_ncube;
pub mod latmatrix;
pub mod linear_array;
pub mod switch;
pub mod technology;
pub mod transmission;

pub use error::TopologyError;
pub use latmatrix::{LatencyMatrix, LatencySource};
pub use switch::SwitchFabric;
pub use technology::NetworkTechnology;
