//! The linear switch array — the paper's **blocking** interconnect
//! (§5.3).
//!
//! A chain of `k = ⌈N/Pr⌉` cascaded switches (eq. 17). Messages traverse
//! on average `(k+1)/3` switches (the approximation used in eq. 19); the
//! exact hop distribution is also provided so the approximation can be
//! quantified (`ablation-hops` experiment). The bisection width of the
//! chain is 1 (for `k ≥ 2`), which is why the paper charges the blocking
//! time `T_B = (N/2 − 1)·M·β` of eq. 20.

use crate::error::TopologyError;
use crate::graph::Graph;
use crate::switch::SwitchFabric;

/// A linear array of switches serving `n` endpoints.
///
/// Endpoints fill switches in index order: endpoint `i` attaches to
/// switch `i / Pr`. (The paper attaches `Pr` endpoints per switch and
/// does not reserve ports for the chain links; we keep that convention
/// for fidelity.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearArray {
    nodes: usize,
    switch: SwitchFabric,
}

impl LinearArray {
    /// Builds the linear-array description for `nodes` endpoints.
    pub fn new(nodes: usize, switch: SwitchFabric) -> Result<Self, TopologyError> {
        if nodes == 0 {
            return Err(TopologyError::InvalidParameter {
                name: "nodes",
                reason: "linear array needs at least one endpoint",
            });
        }
        Ok(LinearArray { nodes, switch })
    }

    /// Number of endpoints.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The switch fabric used along the chain.
    #[inline]
    pub fn switch(&self) -> SwitchFabric {
        self.switch
    }

    /// Number of switches in the chain, `k = ⌈N/Pr⌉` (eq. 17).
    #[inline]
    pub fn switch_count(&self) -> usize {
        self.nodes.div_ceil(self.switch.ports() as usize)
    }

    /// Switch hosting endpoint `i`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::NodeOutOfRange`] for an invalid endpoint.
    pub fn switch_of(&self, node: usize) -> Result<usize, TopologyError> {
        if node >= self.nodes {
            return Err(TopologyError::NodeOutOfRange { index: node, nodes: self.nodes });
        }
        Ok(node / self.switch.ports() as usize)
    }

    /// Number of switches traversed between two endpoints:
    /// `|switch(a) − switch(b)| + 1` (both end switches are crossed).
    /// Returns 0 for `a == b`.
    pub fn switch_traversals(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        let sa = self.switch_of(a)?;
        let sb = self.switch_of(b)?;
        if a == b {
            return Ok(0);
        }
        Ok((sa.abs_diff(sb) + 1) as u32)
    }

    /// The paper's average traversed-switch count, `(k+1)/3` (eq. 19).
    #[inline]
    pub fn paper_mean_switch_traversals(&self) -> f64 {
        (self.switch_count() as f64 + 1.0) / 3.0
    }

    /// Exact mean switch traversals over ordered pairs of distinct
    /// endpoints under uniform traffic.
    pub fn exact_mean_switch_traversals(&self) -> f64 {
        if self.nodes < 2 {
            return 0.0;
        }
        let k = self.switch_count();
        let pr = self.switch.ports() as usize;
        // occupancy[s] = endpoints on switch s.
        let occupancy: Vec<f64> = (0..k)
            .map(|s| {
                let lo = s * pr;
                let hi = ((s + 1) * pr).min(self.nodes);
                (hi - lo) as f64
            })
            .collect();
        let mut acc = 0.0;
        for (sa, &na) in occupancy.iter().enumerate() {
            for (sb, &nb) in occupancy.iter().enumerate() {
                let pairs = if sa == sb { na * (na - 1.0) } else { na * nb };
                acc += pairs * (sa.abs_diff(sb) as f64 + 1.0);
            }
        }
        let n = self.nodes as f64;
        acc / (n * (n - 1.0))
    }

    /// Full hop-count distribution: `dist[h]` = probability a uniformly
    /// random ordered pair of distinct endpoints traverses `h + 1`
    /// switches (index 0 ↔ one switch).
    pub fn traversal_distribution(&self) -> Vec<f64> {
        let k = self.switch_count();
        let pr = self.switch.ports() as usize;
        let occupancy: Vec<f64> = (0..k)
            .map(|s| {
                let lo = s * pr;
                let hi = ((s + 1) * pr).min(self.nodes);
                (hi - lo) as f64
            })
            .collect();
        let mut dist = vec![0.0; k];
        for (sa, &na) in occupancy.iter().enumerate() {
            for (sb, &nb) in occupancy.iter().enumerate() {
                let pairs = if sa == sb { na * (na - 1.0) } else { na * nb };
                dist[sa.abs_diff(sb)] += pairs;
            }
        }
        let n = self.nodes as f64;
        let total = n * (n - 1.0);
        if total > 0.0 {
            for v in &mut dist {
                *v /= total;
            }
        }
        dist
    }

    /// Fabric bisection width of the chain — the paper's §5.3 claim:
    /// 1 for `k ≥ 2` (cut one chain link). This counts switch-to-switch
    /// links and assumes the node halves align with switch boundaries;
    /// when `N/2` falls inside a switch the *graph* bisection also cuts
    /// the minority endpoint links (see the cross-check tests). A
    /// single-switch "chain" has no chain link to cut; its natural
    /// bisection runs through the switch itself and we report `⌈N/2⌉`
    /// endpoint links, although the paper's blocking model (eq. 20)
    /// applies the `(N/2−1)` penalty regardless of `k`.
    pub fn bisection_width(&self) -> usize {
        if self.switch_count() >= 2 {
            1
        } else {
            self.nodes.div_ceil(2)
        }
    }

    /// Builds the explicit multigraph: endpoint vertices `0..n`, switch
    /// vertices following, chain links between consecutive switches.
    pub fn build_graph(&self) -> Graph {
        let k = self.switch_count();
        let pr = self.switch.ports() as usize;
        let mut g = Graph::new(self.nodes + k);
        for node in 0..self.nodes {
            g.add_edge(node, self.nodes + node / pr);
        }
        for s in 0..k.saturating_sub(1) {
            g.add_edge(self.nodes + s, self.nodes + s + 1);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(nodes: usize, ports: u32) -> LinearArray {
        LinearArray::new(nodes, SwitchFabric::new(ports, 10.0).unwrap()).unwrap()
    }

    #[test]
    fn eq17_switch_count() {
        assert_eq!(arr(256, 24).switch_count(), 11);
        assert_eq!(arr(24, 24).switch_count(), 1);
        assert_eq!(arr(25, 24).switch_count(), 2);
        assert_eq!(arr(1, 24).switch_count(), 1);
    }

    #[test]
    fn node_placement_and_traversals() {
        let a = arr(100, 24);
        assert_eq!(a.switch_of(0).unwrap(), 0);
        assert_eq!(a.switch_of(23).unwrap(), 0);
        assert_eq!(a.switch_of(24).unwrap(), 1);
        assert_eq!(a.switch_of(99).unwrap(), 4);
        assert_eq!(a.switch_traversals(0, 23).unwrap(), 1);
        assert_eq!(a.switch_traversals(0, 99).unwrap(), 5);
        assert_eq!(a.switch_traversals(5, 5).unwrap(), 0);
        assert!(a.switch_of(100).is_err());
    }

    #[test]
    fn paper_mean_eq19() {
        let a = arr(256, 24); // k = 11
        assert!((a.paper_mean_switch_traversals() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exact_mean_matches_brute_force() {
        for (n, p) in [(100usize, 24u32), (48, 24), (7, 4), (30, 8), (24, 24)] {
            let a = arr(n, p);
            let mut acc = 0.0;
            let mut cnt = 0.0;
            for x in 0..n {
                for y in 0..n {
                    if x != y {
                        acc += a.switch_traversals(x, y).unwrap() as f64;
                        cnt += 1.0;
                    }
                }
            }
            let brute = acc / cnt;
            assert!(
                (a.exact_mean_switch_traversals() - brute).abs() < 1e-9,
                "n={n} p={p}: {} vs {brute}",
                a.exact_mean_switch_traversals()
            );
        }
    }

    #[test]
    fn paper_mean_is_a_reasonable_approximation_for_large_k() {
        // With many switches and full occupancy the exact mean tends to
        // k/3 + 1 - o(1); the paper's (k+1)/3 underestimates it but stays
        // within one switch latency of the exact value relative to k.
        let a = arr(24 * 30, 24); // k = 30
        let exact = a.exact_mean_switch_traversals();
        let paper = a.paper_mean_switch_traversals();
        assert!((exact - paper).abs() < 2.0, "exact={exact} paper={paper}");
    }

    #[test]
    fn traversal_distribution_is_a_distribution() {
        let a = arr(100, 24);
        let dist = a.traversal_distribution();
        assert_eq!(dist.len(), 5);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Mean from the distribution equals the exact mean.
        let mean: f64 = dist.iter().enumerate().map(|(h, p)| (h as f64 + 1.0) * p).sum();
        assert!((mean - a.exact_mean_switch_traversals()).abs() < 1e-12);
    }

    #[test]
    fn bisection_width_is_one_for_chains() {
        assert_eq!(arr(256, 24).bisection_width(), 1);
        assert_eq!(arr(48, 24).bisection_width(), 1);
        // Single switch: bisection runs through endpoint links.
        assert_eq!(arr(10, 24).bisection_width(), 5);
    }

    #[test]
    fn explicit_graph_bisection_matches_closed_form_on_aligned_halves() {
        // When N/2 falls on a switch boundary the graph cut equals the
        // paper's fabric bisection of 1.
        for (n, p) in [(48usize, 24u32), (96, 24), (8, 4), (16, 8)] {
            let a = arr(n, p);
            let g = a.build_graph();
            let half = n / 2;
            let left: Vec<usize> = (0..half).collect();
            let right: Vec<usize> = (half..n).collect();
            let cut = g.min_cut_between_sets(&left, &right);
            assert_eq!(cut, a.bisection_width(), "n={n} p={p}");
        }
    }

    #[test]
    fn misaligned_half_pays_for_the_minority_endpoint_links() {
        // n=100, Pr=24: half=50 splits switch 2 (nodes 48..71) into a
        // minority of 2, so the natural cut is 1 chain link + 2 endpoint
        // links.
        let a = arr(100, 24);
        let g = a.build_graph();
        let left: Vec<usize> = (0..50).collect();
        let right: Vec<usize> = (50..100).collect();
        assert_eq!(g.min_cut_between_sets(&left, &right), 3);
    }

    #[test]
    fn explicit_graph_is_connected() {
        for (n, p) in [(1usize, 24u32), (256, 24), (25, 24), (7, 2)] {
            assert!(arr(n, p).build_graph().is_connected());
        }
    }

    #[test]
    fn rejects_empty() {
        assert!(LinearArray::new(0, SwitchFabric::paper_default()).is_err());
    }
}
