//! The switch-fabric building block.
//!
//! Both of the paper's interconnect architectures are built from
//! `Pr`-port switch fabrics with a fixed traversal latency α_sw
//! (Table 2: Pr = 24 ports, α_sw = 10 µs). In the fat-tree, a switch's
//! ports are split into **up-links** (UL) and **down-links** (DL): middle
//! stages use `UL = DL = Pr/2`, the last (root) stage uses `DL = Pr`,
//! `UL = 0` (§5.2, Figure 3).

use crate::error::TopologyError;

/// A `Pr`-port switch fabric with traversal latency α_sw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchFabric {
    ports: u32,
    latency_us: f64,
}

impl SwitchFabric {
    /// Creates a switch fabric.
    ///
    /// # Errors
    ///
    /// Ports must be an even number ≥ 2 (the fat-tree construction
    /// splits them in half); latency must be finite and non-negative.
    pub fn new(ports: u32, latency_us: f64) -> Result<Self, TopologyError> {
        if ports < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "ports",
                reason: "switch must have at least 2 ports",
            });
        }
        if !ports.is_multiple_of(2) {
            return Err(TopologyError::InvalidParameter {
                name: "ports",
                reason: "port count must be even (fat-tree splits ports into UL/DL halves)",
            });
        }
        if !latency_us.is_finite() || latency_us < 0.0 {
            return Err(TopologyError::InvalidParameter {
                name: "latency_us",
                reason: "must be finite and non-negative",
            });
        }
        Ok(SwitchFabric { ports, latency_us })
    }

    /// The paper's Table 2 switch: 24 ports, 10 µs.
    pub fn paper_default() -> Self {
        SwitchFabric { ports: 24, latency_us: 10.0 }
    }

    /// Total port count `Pr`.
    #[inline]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Traversal latency α_sw in µs.
    #[inline]
    pub fn latency_us(&self) -> f64 {
        self.latency_us
    }

    /// Port split for a **middle** fat-tree stage: `UL = DL = Pr/2`.
    #[inline]
    pub fn middle_stage_split(&self) -> PortSplit {
        PortSplit { up_links: self.ports / 2, down_links: self.ports / 2 }
    }

    /// Port split for the **last** (root) fat-tree stage:
    /// `DL = Pr`, `UL = 0`.
    #[inline]
    pub fn last_stage_split(&self) -> PortSplit {
        PortSplit { up_links: 0, down_links: self.ports }
    }
}

/// Division of a switch's ports into up-links and down-links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSplit {
    /// Ports facing the next (higher) stage.
    pub up_links: u32,
    /// Ports facing nodes or the previous (lower) stage.
    pub down_links: u32,
}

impl PortSplit {
    /// Total ports in this split.
    #[inline]
    pub fn total(&self) -> u32 {
        self.up_links + self.down_links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let sw = SwitchFabric::paper_default();
        assert_eq!(sw.ports(), 24);
        assert_eq!(sw.latency_us(), 10.0);
    }

    #[test]
    fn port_splits() {
        let sw = SwitchFabric::new(8, 10.0).unwrap();
        assert_eq!(sw.middle_stage_split(), PortSplit { up_links: 4, down_links: 4 });
        assert_eq!(sw.last_stage_split(), PortSplit { up_links: 0, down_links: 8 });
        assert_eq!(sw.middle_stage_split().total(), 8);
        assert_eq!(sw.last_stage_split().total(), 8);
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(SwitchFabric::new(0, 1.0).is_err());
        assert!(SwitchFabric::new(1, 1.0).is_err());
        assert!(SwitchFabric::new(7, 1.0).is_err(), "odd port count");
        assert!(SwitchFabric::new(8, -1.0).is_err());
        assert!(SwitchFabric::new(8, f64::INFINITY).is_err());
        assert!(SwitchFabric::new(2, 0.0).is_ok());
    }
}
