//! Network link technologies.
//!
//! §5 of the paper characterises a cluster interconnect by its
//! **latency** (α, µs) and **bandwidth** (1/β, MB/s). Heterogeneity
//! across network tiers is expressed by assigning different technologies
//! to ICN1, ECN1 and ICN2 (Table 1 scenarios). Table 2 gives the
//! measured constants for Gigabit Ethernet and Fast Ethernet used in the
//! paper's experiments; Myrinet and InfiniBand presets (typical 2005-era
//! figures from the literature the paper cites) are included for the
//! technology-heterogeneity extension.

use crate::error::TopologyError;

/// A link technology: startup latency α and sustained bandwidth.
///
/// Bandwidth is stored in MB/s, which equals bytes/µs, so
/// [`NetworkTechnology::byte_time_us`] (the paper's β) is simply
/// `1/bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkTechnology {
    /// Human-readable technology name.
    pub name: &'static str,
    /// One-way small-message latency α in microseconds.
    pub latency_us: f64,
    /// Sustained bandwidth in MB/s (== bytes/µs).
    pub bandwidth_mb_s: f64,
}

impl NetworkTechnology {
    /// Creates a custom technology after validating parameters.
    pub fn new(
        name: &'static str,
        latency_us: f64,
        bandwidth_mb_s: f64,
    ) -> Result<Self, TopologyError> {
        if !latency_us.is_finite() || latency_us < 0.0 {
            return Err(TopologyError::InvalidParameter {
                name: "latency_us",
                reason: "must be finite and non-negative",
            });
        }
        if !bandwidth_mb_s.is_finite() || bandwidth_mb_s <= 0.0 {
            return Err(TopologyError::InvalidParameter {
                name: "bandwidth_mb_s",
                reason: "must be finite and positive",
            });
        }
        Ok(NetworkTechnology { name, latency_us, bandwidth_mb_s })
    }

    /// Gigabit Ethernet — Table 2: α = 80 µs, 94 MB/s.
    pub const GIGABIT_ETHERNET: NetworkTechnology =
        NetworkTechnology { name: "Gigabit Ethernet", latency_us: 80.0, bandwidth_mb_s: 94.0 };

    /// Fast Ethernet — Table 2: α = 50 µs, 10.5 MB/s.
    pub const FAST_ETHERNET: NetworkTechnology =
        NetworkTechnology { name: "Fast Ethernet", latency_us: 50.0, bandwidth_mb_s: 10.5 };

    /// Myrinet (2000-class) — typical 2005-era measurements
    /// (Lobosco et al., the paper's ref. [16]).
    pub const MYRINET: NetworkTechnology =
        NetworkTechnology { name: "Myrinet", latency_us: 9.0, bandwidth_mb_s: 230.0 };

    /// InfiniBand 4x SDR — typical 2005-era measurements.
    pub const INFINIBAND: NetworkTechnology =
        NetworkTechnology { name: "InfiniBand 4x", latency_us: 6.0, bandwidth_mb_s: 700.0 };

    /// Every built-in technology preset, ordered by bandwidth. The
    /// canonical enumeration axis for design-space search: a sweep or
    /// optimizer that consumes this list automatically picks up any
    /// preset added later (and exhaustive `match`es over preset names,
    /// like the capacity planner's cost catalogue, are tested against
    /// it so a new preset cannot be silently mispriced).
    pub const PRESETS: [NetworkTechnology; 4] = [
        NetworkTechnology::FAST_ETHERNET,
        NetworkTechnology::GIGABIT_ETHERNET,
        NetworkTechnology::MYRINET,
        NetworkTechnology::INFINIBAND,
    ];

    /// Time to transmit one byte, β = 1/bandwidth, in µs/byte.
    #[inline]
    pub fn byte_time_us(&self) -> f64 {
        1.0 / self.bandwidth_mb_s
    }

    /// Point-to-point message time without switches — paper eq. 10:
    /// `T = α + M·β` for a message of `message_bytes`.
    #[inline]
    pub fn point_to_point_time_us(&self, message_bytes: u64) -> f64 {
        self.latency_us + message_bytes as f64 * self.byte_time_us()
    }

    /// Half-power point n_{1/2}: the message size at which half of the
    /// peak bandwidth is achieved, `α/β` bytes. A classic figure of merit
    /// for interconnects.
    #[inline]
    pub fn half_power_point_bytes(&self) -> f64 {
        self.latency_us / self.byte_time_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        let ge = NetworkTechnology::GIGABIT_ETHERNET;
        assert_eq!(ge.latency_us, 80.0);
        assert_eq!(ge.bandwidth_mb_s, 94.0);
        let fe = NetworkTechnology::FAST_ETHERNET;
        assert_eq!(fe.latency_us, 50.0);
        assert_eq!(fe.bandwidth_mb_s, 10.5);
    }

    #[test]
    fn byte_time_is_inverse_bandwidth() {
        let fe = NetworkTechnology::FAST_ETHERNET;
        assert!((fe.byte_time_us() - 1.0 / 10.5).abs() < 1e-15);
    }

    #[test]
    fn point_to_point_eq10() {
        // 1024 B over GE: 80 + 1024/94 ≈ 90.894 µs.
        let t = NetworkTechnology::GIGABIT_ETHERNET.point_to_point_time_us(1024);
        assert!((t - (80.0 + 1024.0 / 94.0)).abs() < 1e-9);
        // Zero-byte message costs exactly the latency.
        assert_eq!(NetworkTechnology::FAST_ETHERNET.point_to_point_time_us(0), 50.0);
    }

    #[test]
    fn ge_beats_fe_for_large_messages_but_not_small() {
        let ge = NetworkTechnology::GIGABIT_ETHERNET;
        let fe = NetworkTechnology::FAST_ETHERNET;
        // Small message: FE's lower latency wins (50 < 80).
        assert!(fe.point_to_point_time_us(16) < ge.point_to_point_time_us(16));
        // Large message: GE's bandwidth wins.
        assert!(ge.point_to_point_time_us(100_000) < fe.point_to_point_time_us(100_000));
    }

    #[test]
    fn half_power_point() {
        let ge = NetworkTechnology::GIGABIT_ETHERNET;
        // alpha/beta = 80 µs * 94 B/µs = 7520 B.
        assert!((ge.half_power_point_bytes() - 7520.0).abs() < 1e-9);
        // At n_1/2 the effective bandwidth is half the peak.
        let t = ge.point_to_point_time_us(7520);
        let eff = 7520.0 / t;
        assert!((eff - ge.bandwidth_mb_s / 2.0).abs() < 1e-9);
    }

    #[test]
    fn custom_technology_validation() {
        assert!(NetworkTechnology::new("x", -1.0, 100.0).is_err());
        assert!(NetworkTechnology::new("x", 1.0, 0.0).is_err());
        assert!(NetworkTechnology::new("x", f64::NAN, 1.0).is_err());
        assert!(NetworkTechnology::new("x", 0.0, 1.0).is_ok());
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let techs = [
            NetworkTechnology::FAST_ETHERNET,
            NetworkTechnology::GIGABIT_ETHERNET,
            NetworkTechnology::MYRINET,
            NetworkTechnology::INFINIBAND,
        ];
        for w in techs.windows(2) {
            assert!(w[0].bandwidth_mb_s < w[1].bandwidth_mb_s);
        }
    }
}
