//! Message transmission-time models — eqs. 10, 11 and 18–21 of the
//! paper.
//!
//! The transmission time of an `M`-byte message between two endpoints is
//! assembled from the link technology (α, β), the switch latency α_sw
//! and the topology:
//!
//! * plain point-to-point (eq. 10): `T = α + M·β`;
//! * non-blocking fat-tree (eq. 11): `T = α + (2d−1)·α_sw + M·β`;
//! * blocking linear array (eq. 19): `T = α + ((k+1)/3)·α_sw + M·β`,
//!   plus the blocking penalty `T_B = (N/2 − 1)·M·β` (eq. 20), folded in
//!   as `T = α + ((k+1)/3)·α_sw + (N/2)·M·β` (eq. 21).
//!
//! The [`TransmissionModel`] values produced here become the mean
//! service times (1/µ) of the queueing centres in `hmcs-core`, and the
//! service-time parameters of the simulators in `hmcs-sim`.

use crate::error::TopologyError;
use crate::fat_tree::FatTree;
use crate::linear_array::LinearArray;
use crate::switch::SwitchFabric;
use crate::technology::NetworkTechnology;

/// Which interconnect architecture a network uses (§5.2 vs §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Multi-stage fat-tree: full bisection bandwidth, `T_B = 0`.
    NonBlocking,
    /// Linear switch array: bisection width 1, `T_B = (N/2−1)·M·β`.
    Blocking,
}

impl Architecture {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::NonBlocking => "non-blocking (fat-tree)",
            Architecture::Blocking => "blocking (linear array)",
        }
    }
}

/// How the number of traversed switches is estimated for the blocking
/// linear array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HopModel {
    /// The paper's `(k+1)/3` average (eq. 19). Default for fidelity.
    #[default]
    PaperAverage,
    /// The exact mean of `|s_a − s_b| + 1` under uniform traffic
    /// (`ablation-hops`).
    ExactMean,
}

/// Decomposition of a mean message transmission time (µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionBreakdown {
    /// Link start-up latency α.
    pub link_latency_us: f64,
    /// Total switch traversal delay (`hops × α_sw`).
    pub switch_delay_us: f64,
    /// Raw payload transfer time `M·β`.
    pub payload_time_us: f64,
    /// Blocking penalty `T_B` (zero for non-blocking networks).
    pub blocking_time_us: f64,
}

impl TransmissionBreakdown {
    /// Total mean transmission time `T = α + hops·α_sw + M·β + T_B`.
    #[inline]
    pub fn total_us(&self) -> f64 {
        self.link_latency_us + self.switch_delay_us + self.payload_time_us + self.blocking_time_us
    }
}

/// A fully specified communication network: technology + switch + size +
/// architecture. Produces mean transmission times for the analytical
/// model and per-hop parameters for the simulators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionModel {
    technology: NetworkTechnology,
    switch: SwitchFabric,
    endpoints: usize,
    architecture: Architecture,
    hop_model: HopModel,
}

impl TransmissionModel {
    /// Builds a transmission model for a network with `endpoints`
    /// attached endpoints.
    pub fn new(
        technology: NetworkTechnology,
        switch: SwitchFabric,
        endpoints: usize,
        architecture: Architecture,
    ) -> Result<Self, TopologyError> {
        if endpoints == 0 {
            return Err(TopologyError::InvalidParameter {
                name: "endpoints",
                reason: "network needs at least one endpoint",
            });
        }
        // Validate constructibility eagerly.
        match architecture {
            Architecture::NonBlocking => {
                FatTree::new(endpoints, switch)?;
            }
            Architecture::Blocking => {
                LinearArray::new(endpoints, switch)?;
            }
        }
        Ok(TransmissionModel {
            technology,
            switch,
            endpoints,
            architecture,
            hop_model: HopModel::default(),
        })
    }

    /// Replaces the hop model (defaults to the paper's accounting:
    /// worst-case `2d−1` for fat-trees per eq. 11, `(k+1)/3` for linear
    /// arrays per eq. 19).
    pub fn with_hop_model(mut self, hop_model: HopModel) -> Self {
        self.hop_model = hop_model;
        self
    }

    /// The link technology.
    #[inline]
    pub fn technology(&self) -> NetworkTechnology {
        self.technology
    }

    /// The switch fabric.
    #[inline]
    pub fn switch(&self) -> SwitchFabric {
        self.switch
    }

    /// Number of endpoints attached to this network.
    #[inline]
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    /// The architecture.
    #[inline]
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// Mean number of switch traversals charged per message.
    ///
    /// Non-blocking: the paper's eq. 11 charges the worst case `2d−1`
    /// ([`HopModel::PaperAverage`]); [`HopModel::ExactMean`] instead uses
    /// the exact uniform-pair mean, which is lower whenever some pairs
    /// meet below the root.
    pub fn mean_switch_traversals(&self) -> f64 {
        match self.architecture {
            Architecture::NonBlocking => {
                let ft =
                    FatTree::new(self.endpoints, self.switch).expect("validated at construction");
                match self.hop_model {
                    HopModel::PaperAverage => ft.worst_case_switch_traversals() as f64,
                    HopModel::ExactMean => {
                        if self.endpoints < 2 {
                            ft.worst_case_switch_traversals() as f64
                        } else {
                            ft.mean_switch_traversals()
                        }
                    }
                }
            }
            Architecture::Blocking => {
                let la = LinearArray::new(self.endpoints, self.switch)
                    .expect("validated at construction");
                match self.hop_model {
                    HopModel::PaperAverage => la.paper_mean_switch_traversals(),
                    HopModel::ExactMean => la.exact_mean_switch_traversals(),
                }
            }
        }
    }

    /// Mean transmission time of an `message_bytes`-byte message, broken
    /// into its components (eq. 11 for non-blocking, eq. 21 for
    /// blocking).
    pub fn breakdown(&self, message_bytes: u64) -> TransmissionBreakdown {
        let m = message_bytes as f64;
        let beta = self.technology.byte_time_us();
        let payload = m * beta;
        let switch_delay = self.mean_switch_traversals() * self.switch.latency_us();
        let blocking = match self.architecture {
            Architecture::NonBlocking => 0.0,
            // eq. 20: (N/2 − 1)·M·β.
            Architecture::Blocking => ((self.endpoints as f64 / 2.0) - 1.0).max(0.0) * payload,
        };
        TransmissionBreakdown {
            link_latency_us: self.technology.latency_us,
            switch_delay_us: switch_delay,
            payload_time_us: payload,
            blocking_time_us: blocking,
        }
    }

    /// Mean transmission time in µs (total of [`Self::breakdown`]).
    #[inline]
    pub fn mean_time_us(&self, message_bytes: u64) -> f64 {
        self.breakdown(message_bytes).total_us()
    }

    /// Service rate µ (messages/µs) of this network when modelled as a
    /// queueing centre with mean service time equal to
    /// [`Self::mean_time_us`].
    #[inline]
    pub fn service_rate(&self, message_bytes: u64) -> f64 {
        1.0 / self.mean_time_us(message_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge() -> NetworkTechnology {
        NetworkTechnology::GIGABIT_ETHERNET
    }

    fn fe() -> NetworkTechnology {
        NetworkTechnology::FAST_ETHERNET
    }

    fn sw() -> SwitchFabric {
        SwitchFabric::paper_default()
    }

    #[test]
    fn eq11_nonblocking_time() {
        // N=256, Pr=24 => d=2 => 3 switch hops.
        let t = TransmissionModel::new(ge(), sw(), 256, Architecture::NonBlocking).unwrap();
        let expect = 80.0 + 3.0 * 10.0 + 1024.0 / 94.0;
        assert!((t.mean_time_us(1024) - expect).abs() < 1e-9);
        let b = t.breakdown(1024);
        assert_eq!(b.blocking_time_us, 0.0);
        assert!((b.switch_delay_us - 30.0).abs() < 1e-12);
    }

    #[test]
    fn eq21_blocking_time() {
        // N=256, Pr=24 => k=11, mean hops (k+1)/3 = 4.
        let t = TransmissionModel::new(fe(), sw(), 256, Architecture::Blocking).unwrap();
        let payload = 1024.0 / 10.5;
        let expect = 50.0 + 4.0 * 10.0 + 128.0 * payload;
        assert!((t.mean_time_us(1024) - expect).abs() < 1e-9);
        let b = t.breakdown(1024);
        // T_B = (N/2 - 1) M beta = 127 * payload.
        assert!((b.blocking_time_us - 127.0 * payload).abs() < 1e-9);
        assert!((b.payload_time_us - payload).abs() < 1e-12);
    }

    #[test]
    fn single_switch_network_has_one_hop() {
        let t = TransmissionModel::new(ge(), sw(), 16, Architecture::NonBlocking).unwrap();
        assert_eq!(t.mean_switch_traversals(), 1.0);
        let expect = 80.0 + 10.0 + 512.0 / 94.0;
        assert!((t.mean_time_us(512) - expect).abs() < 1e-9);
    }

    #[test]
    fn blocking_dominates_nonblocking_at_paper_scales() {
        for n in [16usize, 64, 256] {
            for m in [512u64, 1024, 4096] {
                let nb = TransmissionModel::new(ge(), sw(), n, Architecture::NonBlocking).unwrap();
                let bl = TransmissionModel::new(ge(), sw(), n, Architecture::Blocking).unwrap();
                assert!(
                    bl.mean_time_us(m) >= nb.mean_time_us(m),
                    "blocking must not be faster: n={n} m={m}"
                );
            }
        }
    }

    #[test]
    fn paper_hop_average_artifact_for_single_switch_chains() {
        // Documented fidelity quirk: for k = 1 the paper's (k+1)/3 hop
        // average charges only 2/3 of a switch traversal, so a tiny
        // message on a tiny "blocking" network can come out marginally
        // faster than the non-blocking model, which charges a full
        // switch. The blocking penalty still dominates for realistic
        // message sizes.
        let nb = TransmissionModel::new(ge(), sw(), 4, Architecture::NonBlocking).unwrap();
        let bl = TransmissionModel::new(ge(), sw(), 4, Architecture::Blocking).unwrap();
        assert!(bl.mean_time_us(64) < nb.mean_time_us(64), "the artifact exists");
        assert!(bl.mean_time_us(4096) > nb.mean_time_us(4096), "payload restores order");
        // The exact-hop ablation model removes the artifact entirely.
        let bl_exact = bl.with_hop_model(HopModel::ExactMean);
        assert!(bl_exact.mean_time_us(64) >= nb.mean_time_us(64));
    }

    #[test]
    fn two_endpoint_blocking_network_has_no_penalty() {
        // N=2: (N/2 - 1) = 0.
        let t = TransmissionModel::new(fe(), sw(), 2, Architecture::Blocking).unwrap();
        assert_eq!(t.breakdown(1024).blocking_time_us, 0.0);
    }

    #[test]
    fn hop_model_switch() {
        let paper = TransmissionModel::new(fe(), sw(), 256, Architecture::Blocking).unwrap();
        let exact = paper.with_hop_model(HopModel::ExactMean);
        assert!((paper.mean_switch_traversals() - 4.0).abs() < 1e-12, "paper model: (11+1)/3");
        // Exact mean differs from the paper's approximation.
        assert!(exact.mean_switch_traversals() != paper.mean_switch_traversals());
        // Both are within the chain length.
        assert!(exact.mean_switch_traversals() <= 11.0);
    }

    #[test]
    fn fat_tree_exact_hop_model_is_cheaper() {
        // N=256, Pr=24: d=2 but many pairs share a leaf switch, so the
        // exact mean sits below the paper's worst-case 3.
        let worst = TransmissionModel::new(ge(), sw(), 256, Architecture::NonBlocking).unwrap();
        let exact = worst.with_hop_model(HopModel::ExactMean);
        assert_eq!(worst.mean_switch_traversals(), 3.0);
        assert!(exact.mean_switch_traversals() < 3.0);
        assert!(exact.mean_switch_traversals() >= 1.0);
        assert!(exact.mean_time_us(1024) < worst.mean_time_us(1024));
    }

    #[test]
    fn service_rate_is_inverse_time() {
        let t = TransmissionModel::new(ge(), sw(), 64, Architecture::NonBlocking).unwrap();
        let rate = t.service_rate(1024);
        assert!((rate * t.mean_time_us(1024) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_size_scales_payload_linearly() {
        let t = TransmissionModel::new(ge(), sw(), 256, Architecture::NonBlocking).unwrap();
        let t512 = t.mean_time_us(512);
        let t1024 = t.mean_time_us(1024);
        let fixed = 80.0 + 30.0;
        assert!(((t1024 - fixed) - 2.0 * (t512 - fixed)).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_endpoints() {
        assert!(TransmissionModel::new(ge(), sw(), 0, Architecture::NonBlocking).is_err());
    }

    #[test]
    fn architecture_names() {
        assert!(Architecture::NonBlocking.name().contains("fat-tree"));
        assert!(Architecture::Blocking.name().contains("linear"));
    }
}
