//! Property-based tests for the topology substrate.

use hmcs_topology::bisection;
use hmcs_topology::fat_tree::FatTree;
use hmcs_topology::linear_array::LinearArray;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::{Architecture, HopModel, TransmissionModel};
use proptest::prelude::*;

fn any_switch() -> impl Strategy<Value = SwitchFabric> {
    (2u32..32, 0.0f64..50.0)
        .prop_map(|(half_ports, lat)| SwitchFabric::new(half_ports * 2, lat).unwrap())
}

proptest! {
    /// Eq. 12's closed form and the structural minimal-stage rule agree
    /// everywhere.
    #[test]
    fn stage_count_forms_agree(nodes in 1usize..20_000, sw in any_switch()) {
        prop_assume!(sw.ports() >= 4 || nodes <= 2);
        let ft = FatTree::new(nodes, sw).unwrap();
        prop_assert_eq!(ft.stages(), FatTree::stage_count_eq12(nodes, sw.ports()));
    }

    /// A fat-tree's capacity covers its nodes with the minimal number of
    /// stages.
    #[test]
    fn fat_tree_stage_minimality(nodes in 1usize..20_000, sw in any_switch()) {
        prop_assume!(sw.ports() >= 4 || nodes <= 2);
        let ft = FatTree::new(nodes, sw).unwrap();
        prop_assert!(ft.capacity() >= nodes as u128);
        if ft.stages() > 1 {
            let pr = sw.ports() as u128;
            let smaller_cap = pr * (pr / 2).pow(ft.stages() - 2);
            prop_assert!(smaller_cap < nodes as u128);
        }
    }

    /// Switch-count closed form (eq. 13) equals stage-by-stage counting.
    #[test]
    fn switch_count_eq13_consistency(nodes in 1usize..5_000, sw in any_switch()) {
        prop_assume!(sw.ports() >= 4 || nodes <= 2);
        let ft = FatTree::new(nodes, sw).unwrap();
        let d = ft.stages() as usize;
        let by_stages =
            (d - 1) * ft.switches_per_middle_stage() + ft.switches_in_last_stage();
        prop_assert_eq!(ft.switch_count(), by_stages);
    }

    /// Hop counts are symmetric, bounded by the worst case, and zero only
    /// on the diagonal.
    #[test]
    fn fat_tree_hop_count_properties(
        nodes in 2usize..300,
        sw in any_switch(),
        seed in 0u64..500,
    ) {
        prop_assume!(sw.ports() >= 4);
        let ft = FatTree::new(nodes, sw).unwrap();
        let a = (seed as usize) % nodes;
        let b = (seed as usize * 31 + 7) % nodes;
        let hab = ft.switch_traversals(a, b).unwrap();
        let hba = ft.switch_traversals(b, a).unwrap();
        prop_assert_eq!(hab, hba);
        if a == b {
            prop_assert_eq!(hab, 0);
        } else {
            prop_assert!(hab >= 1);
            prop_assert!(hab <= ft.worst_case_switch_traversals());
            // Up/down distances are odd.
            prop_assert_eq!(hab % 2, 1);
        }
    }

    /// The linear array's exact mean traversal count lies within the
    /// chain length and is at least 1.
    #[test]
    fn linear_array_mean_bounds(nodes in 2usize..2_000, sw in any_switch()) {
        let la = LinearArray::new(nodes, sw).unwrap();
        let mean = la.exact_mean_switch_traversals();
        prop_assert!(mean >= 1.0 - 1e-12);
        prop_assert!(mean <= la.switch_count() as f64 + 1e-12);
        // Distribution sums to 1 and reproduces the mean.
        let dist = la.traversal_distribution();
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mean2: f64 = dist.iter().enumerate().map(|(h, p)| (h as f64 + 1.0) * p).sum();
        prop_assert!((mean - mean2).abs() < 1e-9);
    }

    /// Fat-tree graphs are connected and satisfy Theorem 1 on
    /// boundary-aligned instances small enough for max-flow.
    #[test]
    fn fat_tree_full_bisection(pods in 1usize..8, half_ports in 2u32..8) {
        let sw = SwitchFabric::new(half_ports * 2, 10.0).unwrap();
        // Node count = pods * down-radix, and even, so halves align.
        let nodes = (pods * half_ports as usize).max(2) * 2 / 2 * 2;
        let nodes = nodes.max(2);
        let ft = FatTree::new(nodes, sw).unwrap();
        let g = ft.build_graph();
        prop_assert!(g.graph().is_connected());
        let report = bisection::analyze(g.graph(), nodes);
        prop_assert!(
            report.has_full_bisection_bandwidth(),
            "nodes={} width={} target={}",
            nodes, report.bisection_width, report.full_bisection_target
        );
    }

    /// Transmission time decomposition is consistent and monotone in
    /// message size.
    #[test]
    fn transmission_monotone_in_message_size(
        nodes in 2usize..1_000,
        m1 in 1u64..100_000,
        extra in 1u64..100_000,
        blocking in any::<bool>(),
    ) {
        let arch = if blocking { Architecture::Blocking } else { Architecture::NonBlocking };
        let t = TransmissionModel::new(
            NetworkTechnology::GIGABIT_ETHERNET,
            SwitchFabric::paper_default(),
            nodes,
            arch,
        )
        .unwrap();
        let a = t.mean_time_us(m1);
        let b = t.mean_time_us(m1 + extra);
        prop_assert!(b > a);
        let bd = t.breakdown(m1);
        prop_assert!((bd.total_us() - a).abs() < 1e-9);
        prop_assert!(bd.link_latency_us >= 0.0 && bd.switch_delay_us >= 0.0);
        if !blocking {
            prop_assert_eq!(bd.blocking_time_us, 0.0);
        }
    }

    /// The blocking penalty grows linearly with network size.
    #[test]
    fn blocking_penalty_scales_with_endpoints(n1 in 4usize..500, grow in 2usize..4) {
        let mk = |n| {
            TransmissionModel::new(
                NetworkTechnology::FAST_ETHERNET,
                SwitchFabric::paper_default(),
                n,
                Architecture::Blocking,
            )
            .unwrap()
            .breakdown(1024)
            .blocking_time_us
        };
        prop_assert!(mk(n1 * grow) > mk(n1));
    }

    /// Exact hop model never exceeds the chain length and the paper's
    /// approximation stays within one switch of it for full chains.
    #[test]
    fn hop_models_close_for_full_chains(k in 1usize..40) {
        let sw = SwitchFabric::paper_default();
        let nodes = k * sw.ports() as usize;
        let t = TransmissionModel::new(
            NetworkTechnology::FAST_ETHERNET,
            sw,
            nodes,
            Architecture::Blocking,
        )
        .unwrap();
        let paper = t.mean_switch_traversals();
        let exact = t.with_hop_model(HopModel::ExactMean).mean_switch_traversals();
        prop_assert!((paper - exact).abs() < 1.4, "k={k} paper={paper} exact={exact}");
    }
}
