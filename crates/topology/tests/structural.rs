//! Structural invariants of the explicit topology graphs at scale,
//! cross-checked against the closed forms.

use hmcs_topology::fat_tree::FatTree;
use hmcs_topology::kary_ncube::KaryNCube;
use hmcs_topology::linear_array::LinearArray;
use hmcs_topology::switch::SwitchFabric;

fn sw(ports: u32) -> SwitchFabric {
    SwitchFabric::new(ports, 10.0).unwrap()
}

#[test]
fn fat_tree_graph_shape_full_population() {
    // Full-population trees: every middle stage contributes exactly n
    // uplink edges (pods of c endpoints have c up-links), plus n
    // endpoint edges.
    for (ports, stages_expected) in [(8u32, 2u32), (4, 3)] {
        let d = ports as usize / 2;
        let n = ports as usize * d.pow(stages_expected - 1);
        let ft = FatTree::new(n, sw(ports)).unwrap();
        assert_eq!(ft.stages(), stages_expected, "n={n} ports={ports}");
        let g = ft.build_graph();
        assert!(g.graph().is_connected());
        // Endpoints have degree 1 (their leaf link).
        for v in 0..n {
            assert_eq!(g.graph().degree(v), 1, "endpoint {v}");
        }
        let expected_edges = n + (stages_expected as usize - 1) * n;
        assert_eq!(g.graph().edge_count(), expected_edges, "n={n} ports={ports}");
    }
}

#[test]
fn fat_tree_eq13_agrees_with_stage_sums_large_grid() {
    for ports in [8u32, 16, 24, 48] {
        for n in [5usize, 24, 100, 256, 777, 2048] {
            let ft = FatTree::new(n, sw(ports)).unwrap();
            let d = ft.stages() as usize;
            let per_middle = n.div_ceil(ports as usize / 2);
            let last = n.div_ceil(ports as usize);
            assert_eq!(ft.switch_count(), (d - 1) * per_middle + last, "n={n} ports={ports}");
        }
    }
}

#[test]
fn linear_array_graph_shape() {
    for (n, ports) in [(256usize, 24u32), (100, 24), (7, 4)] {
        let la = LinearArray::new(n, sw(ports)).unwrap();
        let g = la.build_graph();
        let k = la.switch_count();
        // Vertices: endpoints + switches. Edges: one per endpoint plus
        // the k-1 chain links.
        assert_eq!(g.vertex_count(), n + k);
        assert_eq!(g.edge_count(), n + k - 1);
        assert!(g.is_connected());
        // Endpoint degree 1; interior switch degree occupancy + 2.
        for v in 0..n {
            assert_eq!(g.degree(v), 1);
        }
    }
}

#[test]
fn kary_ncube_edge_count_grid() {
    for (k, n) in [(2u32, 6u32), (3, 3), (4, 3), (8, 2), (16, 2)] {
        let cube = KaryNCube::new(k, n).unwrap();
        let g = cube.build_graph();
        assert_eq!(g.vertex_count(), cube.nodes());
        assert_eq!(g.edge_count(), cube.link_count(), "k={k} n={n}");
        assert!(g.is_connected());
        // Regular degree: 2n for k>2, n for k=2.
        let want = if k == 2 { n as usize } else { 2 * n as usize };
        for v in 0..cube.nodes() {
            assert_eq!(g.degree(v), want, "k={k} n={n} v={v}");
        }
    }
}

#[test]
fn fat_tree_mean_hops_scale_with_radix() {
    // Bigger switches flatten the tree: mean traversals must be
    // non-increasing in the port count for fixed n.
    let n = 512;
    let mut prev = f64::INFINITY;
    for ports in [8u32, 16, 24, 48, 64] {
        let ft = FatTree::new(n, sw(ports)).unwrap();
        let mean = ft.mean_switch_traversals();
        assert!(mean <= prev + 1e-12, "ports={ports}: {mean} > {prev}");
        prev = mean;
    }
}

#[test]
fn diameters_rank_the_families() {
    // At 256 nodes: fat-tree (3 switch hops) < hypercube (8) <
    // 16x16 torus (16) < ring (128) in worst-case hops.
    let ft = FatTree::new(256, sw(24)).unwrap();
    let hyper = KaryNCube::hypercube(8).unwrap();
    let torus = KaryNCube::new(16, 2).unwrap();
    let ring = KaryNCube::new(256, 1).unwrap();
    assert!(ft.worst_case_switch_traversals() < hyper.diameter());
    assert!(hyper.diameter() < torus.diameter());
    assert!(torus.diameter() < ring.diameter());
    assert_eq!(ring.diameter(), 128);
}
