//! Capacity planning with the analytical model: for each cluster count,
//! find the highest per-processor message rate the system can absorb
//! while keeping mean message latency under an SLO — the kind of
//! question a closed-form model answers in microseconds and a simulator
//! answers in minutes.
//!
//! ```text
//! cargo run --release -p hmcs-suite --example capacity_planning [slo_ms]
//! ```

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
use hmcs_core::sweep::max_lambda_within_latency;
use hmcs_topology::transmission::Architecture;

fn main() {
    let slo_ms: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let slo_us = slo_ms * 1e3;

    println!("SLO: mean message latency <= {slo_ms} ms; 256 nodes, Case 1, M = 1024 B.\n");
    println!("{:>8} | {:>24} | {:>24}", "clusters", "non-blocking max rate", "blocking max rate");
    println!("{:-<8}-+-{:-<24}-+-{:-<24}", "", "", "");

    for &c in &PAPER_CLUSTER_COUNTS {
        let mut cells = Vec::new();
        for arch in [Architecture::NonBlocking, Architecture::Blocking] {
            let base = SystemConfig::paper_preset(Scenario::Case1, c, arch).unwrap();
            let best =
                max_lambda_within_latency(&base, slo_us, 1e-9, 1e-1, 60).expect("model evaluates");
            cells.push(match best {
                Some(lam) => {
                    // Verify the bound holds at the found rate.
                    let at = AnalyticalModel::evaluate(&base.with_lambda(lam)).unwrap();
                    debug_assert!(at.latency.mean_message_latency_us <= slo_us * 1.01);
                    format!("{:.2} msg/ms per node", lam * 1e3)
                }
                None => "infeasible".to_string(),
            });
        }
        println!("{c:>8} | {:>24} | {:>24}", cells[0], cells[1]);
    }

    println!();
    println!("Reading: the non-blocking fat-tree sustains orders of magnitude more");
    println!("traffic per node than the blocking linear array at the same SLO, and the");
    println!("sustainable rate drops as the 256 nodes are split into more clusters");
    println!("(more traffic crosses the slow inter-cluster tiers).");
}
