//! Capacity planning with the analytical model: given a latency SLO
//! and a hardware budget, which buildable system should you buy — and
//! which constraint is actually binding?
//!
//! A thin driver over [`hmcs_core::optimize`] (the same engine behind
//! `reproduce optimize` and the daemon's `POST /v1/optimize`): it
//! sweeps the SLO to show how the cheapest feasible design shifts as
//! the latency requirement tightens, then applies the budget and
//! reports the binding-constraint diagnostics.
//!
//! ```text
//! cargo run --release -p hmcs-suite --example capacity_planning [budget_usd]
//! ```

use hmcs_core::batch::BatchOptions;
use hmcs_core::optimize::{self, Constraints, OptimizeSpec};

fn main() {
    let budget_usd: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60_000.0);

    println!("Cheapest buildable 256-node design per latency SLO (paper Case-1 workload):\n");
    println!("{:>10} | {:>44} | {:>12} | {:>12}", "SLO (ms)", "design", "latency(ms)", "cost($)");
    println!("{:-<10}-+-{:-<44}-+-{:-<12}-+-{:-<12}", "", "", "", "");
    for slo_ms in [300.0, 100.0, 30.0, 10.0, 3.0, 1.0, 0.3] {
        let spec = OptimizeSpec::paper_default(Constraints {
            slo_latency_us: Some(slo_ms * 1e3),
            ..Constraints::default()
        });
        let outcome = optimize::optimize(&spec, BatchOptions::default()).expect("paper space");
        match outcome.cheapest_feasible() {
            Some(point) => println!(
                "{:>10} | {:>44} | {:>12.3} | {:>12.0}",
                slo_ms,
                point.design.key(),
                point.latency_us / 1e3,
                point.cost_usd
            ),
            None => println!("{slo_ms:>10} | {:>44} | {:>12} | {:>12}", "infeasible", "-", "-"),
        }
    }

    println!("\nNow with the purse strings: SLO 10 ms AND budget ${budget_usd:.0}.");
    let spec = OptimizeSpec::paper_default(Constraints {
        slo_latency_us: Some(10_000.0),
        budget_usd: Some(budget_usd),
        ..Constraints::default()
    });
    let outcome = optimize::optimize(&spec, BatchOptions::default()).expect("paper space");
    let d = &outcome.diagnostics;
    println!(
        "{} designs evaluated: {} over budget, {} above SLO, {} feasible, frontier of {}.",
        outcome.evaluated,
        d.over_budget,
        d.above_slo,
        outcome.feasible,
        outcome.frontier.len()
    );
    match outcome.cheapest_feasible() {
        Some(point) => println!(
            "Buy: {} — ${:.0}, {:.3} ms mean latency, bottleneck utilization {:.3}.",
            point.design.key(),
            point.cost_usd,
            point.latency_us / 1e3,
            point.bottleneck_utilization
        ),
        None => {
            let binding = if d.over_budget >= d.above_slo { "budget" } else { "SLO" };
            println!("Nothing satisfies both constraints; the {binding} binds first.");
        }
    }
    println!(
        "\nReading: loosening the SLO walks the frontier toward commodity Ethernet and \
         more clusters; tightening it forces low-latency fabrics whose cost rises \
         faster than the latency falls."
    );
}
