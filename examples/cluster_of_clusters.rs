//! The Cluster-of-Clusters generalisation (the paper's §7 future work)
//! on an LLNL-inspired four-cluster system: MCR-, ALC-, Thunder- and
//! PVC-like members with different sizes and interconnects, joined by a
//! Gigabit-Ethernet second stage.
//!
//! ```text
//! cargo run --release -p hmcs-suite --example cluster_of_clusters
//! ```

use hmcs_core::cluster_of_clusters::{evaluate, ClusterSpec, CocConfig};
use hmcs_core::config::{QueueAccounting, ServiceTimeModel};
use hmcs_sim::coc::{CocSimConfig, CocSimulator};
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::Architecture;

fn main() {
    let names = ["MCR-like", "ALC-like", "Thunder-like", "PVC-like"];
    let cfg = CocConfig {
        clusters: vec![
            // A large capability cluster on Myrinet.
            ClusterSpec {
                nodes: 128,
                icn1: NetworkTechnology::MYRINET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            },
            // A mid-size Linux cluster on GigE.
            ClusterSpec {
                nodes: 96,
                icn1: NetworkTechnology::GIGABIT_ETHERNET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            },
            // A newer InfiniBand machine.
            ClusterSpec {
                nodes: 64,
                icn1: NetworkTechnology::INFINIBAND,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            },
            // A small visualization cluster on Fast Ethernet.
            ClusterSpec {
                nodes: 16,
                icn1: NetworkTechnology::FAST_ETHERNET,
                ecn1: NetworkTechnology::FAST_ETHERNET,
            },
        ],
        icn2: NetworkTechnology::GIGABIT_ETHERNET,
        switch: SwitchFabric::paper_default(),
        architecture: Architecture::NonBlocking,
        message_bytes: 1024,
        lambda_per_us: 2.5e-4,
        accounting: QueueAccounting::SingleQueue,
        service_model: ServiceTimeModel::Exponential,
    };

    let report = evaluate(&cfg).expect("CoC model evaluates");

    println!("Cluster-of-Clusters: {} nodes in {} clusters", cfg.total_nodes(), cfg.clusters.len());
    println!(
        "Effective rate: {:.3e} msg/µs per node; {:.1} processors waiting on average\n",
        report.lambda_eff, report.total_waiting
    );
    println!(
        "{:<14} {:>6} {:>18} {:>8} {:>14} {:>14}",
        "cluster", "nodes", "ICN1 tech", "P_i", "W_ICN1 (µs)", "W_ECN1 (µs)"
    );
    for ((spec, state), name) in cfg.clusters.iter().zip(&report.clusters).zip(names) {
        println!(
            "{:<14} {:>6} {:>18} {:>8.3} {:>14.1} {:>14.1}",
            name,
            spec.nodes,
            spec.icn1.name,
            state.external_probability,
            state.icn1_sojourn_us,
            state.ecn1_sojourn_us
        );
    }
    println!(
        "\nICN2 sojourn: {:.1} µs at {:.1}% utilization",
        report.icn2_sojourn_us,
        report.icn2_utilization * 100.0
    );
    println!(
        "Mean message latency across the federation: {:.3} ms",
        report.mean_message_latency_us / 1e3
    );
    println!("\nNote how the small Fast-Ethernet cluster suffers the slowest intra-cluster");
    println!("sojourn while the big Myrinet cluster sees most of its traffic leave home");
    println!("(high P_i): heterogeneity shifts the bottleneck to the shared second stage.");

    // Validate the future-work model against its dedicated simulator.
    let sim = CocSimulator::run(
        &CocSimConfig::new(cfg).with_messages(10_000).with_warmup(2_000).with_seed(7),
    )
    .expect("CoC simulation runs");
    let err = (report.mean_message_latency_us - sim.mean_latency_us).abs() / sim.mean_latency_us;
    println!(
        "\nSimulated: {:.3} ms over {} messages — the generalised model is off by {:.1}%.",
        sim.mean_latency_ms(),
        sim.messages,
        err * 100.0
    );
}
