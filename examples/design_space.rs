//! Design-space exploration — the use case the paper's introduction
//! motivates: "a performance model is a useful tool for exploring the
//! design space and examining various parameters" when "building a
//! cost-effective high-performance parallel processing system".
//!
//! This example fixes a 256-node workload and asks: across cluster
//! counts, interconnect technologies and switch port counts, which
//! configurations meet a 30 ms latency budget, and what is the cheapest
//! (by a simple cost model) that does?
//!
//! ```text
//! cargo run --release -p hmcs-suite --example design_space
//! ```

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::Architecture;

/// A crude 2005-era street-price model (USD) for illustration: per-NIC
/// cost times node count plus per-switch-port cost.
fn cost_usd(tech: NetworkTechnology, ports: u32, switches: usize, nics: usize) -> f64 {
    let (nic, port) = match tech.name {
        "Fast Ethernet" => (15.0, 8.0),
        "Gigabit Ethernet" => (60.0, 25.0),
        "Myrinet" => (500.0, 220.0),
        "InfiniBand 4x" => (700.0, 300.0),
        _ => (100.0, 50.0),
    };
    nic * nics as f64 + port * (ports as usize * switches) as f64
}

fn main() {
    const BUDGET_MS: f64 = 30.0;
    let techs = [
        NetworkTechnology::FAST_ETHERNET,
        NetworkTechnology::GIGABIT_ETHERNET,
        NetworkTechnology::MYRINET,
    ];
    println!("Design space: 256 nodes, uniform traffic at 0.25 msg/ms, non-blocking fabrics.");
    println!("Latency budget: {BUDGET_MS} ms (analytical model).\n");
    println!(
        "{:>8} {:>18} {:>18} {:>6} {:>12} {:>12}  verdict",
        "clusters", "intra-tech", "inter-tech", "ports", "latency(ms)", "cost($)"
    );

    let mut best: Option<(f64, String)> = None;
    for clusters in [4usize, 16, 64] {
        for intra in techs {
            for inter in techs {
                for ports in [8u32, 24, 48] {
                    let switch = SwitchFabric::new(ports, 10.0).unwrap();
                    let mut cfg = SystemConfig::paper_preset(
                        Scenario::Case1,
                        clusters,
                        Architecture::NonBlocking,
                    )
                    .unwrap()
                    .with_switch(switch);
                    cfg.icn1 = intra;
                    cfg.ecn1 = inter;
                    cfg.icn2 = inter;
                    let report = match AnalyticalModel::evaluate(&cfg) {
                        Ok(r) => r,
                        Err(_) => continue,
                    };
                    let latency = report.latency.mean_message_latency_ms();
                    // Count switches across all fabrics for the cost model.
                    let tiers = hmcs_core::service::TierModels::build(&cfg).unwrap();
                    let switch_count = {
                        use hmcs_topology::fat_tree::FatTree;
                        let per_cluster =
                            FatTree::new(cfg.nodes_per_cluster, switch).unwrap().switch_count();
                        let global = FatTree::new(clusters, switch).unwrap().switch_count();
                        2 * clusters * per_cluster + global
                    };
                    let _ = tiers;
                    let cost = cost_usd(intra, ports, switch_count, 2 * 256);
                    let ok = latency <= BUDGET_MS;
                    if ok {
                        let label =
                            format!("C={clusters} {} / {} Pr={ports}", intra.name, inter.name);
                        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                            best = Some((cost, label));
                        }
                    }
                    println!(
                        "{:>8} {:>18} {:>18} {:>6} {:>12.3} {:>12.0}  {}",
                        clusters,
                        intra.name,
                        inter.name,
                        ports,
                        latency,
                        cost,
                        if ok { "meets budget" } else { "-" }
                    );
                }
            }
        }
    }
    println!();
    match best {
        Some((cost, label)) => {
            println!("Cheapest configuration meeting the budget: {label} at ~${cost:.0}")
        }
        None => println!("No configuration met the budget."),
    }
}
