//! Design-space exploration — the use case the paper's introduction
//! motivates: "a performance model is a useful tool for exploring the
//! design space and examining various parameters" when "building a
//! cost-effective high-performance parallel processing system".
//!
//! A thin driver over [`hmcs_core::optimize`]: the enumeration, the
//! cost model and the Pareto reduction all live in the library (shared
//! with `reproduce optimize` and the daemon's `POST /v1/optimize`).
//! The catalogue cost model is exhaustive over the presets — an
//! unknown technology is a hard error, never a silently-priced guess.
//!
//! ```text
//! cargo run --release -p hmcs-suite --example design_space [slo_ms]
//! ```

use hmcs_core::batch::BatchOptions;
use hmcs_core::optimize::{self, Constraints, OptimizeSpec};

fn main() {
    let slo_ms: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30.0);
    let spec = OptimizeSpec::paper_default(Constraints {
        slo_latency_us: Some(slo_ms * 1e3),
        ..Constraints::default()
    });

    println!(
        "Design space: {} candidate designs over {} nodes ({} cluster splits x \
         {} intra x {} inter technologies x {} port counts x {} architectures).",
        spec.space.len(),
        spec.workload.total_nodes,
        spec.space.cluster_counts.len(),
        spec.space.intra.len(),
        spec.space.inter.len(),
        spec.space.switch_ports.len(),
        spec.space.architectures.len(),
    );
    println!("Latency budget: {slo_ms} ms (analytical model).\n");

    let outcome = optimize::optimize(&spec, BatchOptions::default()).expect("paper-preset space");

    println!(
        "{:>44} {:>8} {:>12} {:>12} {:>8}",
        "design", "switches", "latency(ms)", "cost($)", "util"
    );
    for point in &outcome.frontier {
        println!(
            "{:>44} {:>8} {:>12.3} {:>12.0} {:>8.3}",
            point.design.key(),
            point.design.total_switches(),
            point.latency_us / 1e3,
            point.cost_usd,
            point.bottleneck_utilization,
        );
    }

    let d = &outcome.diagnostics;
    println!(
        "\n{} evaluated, {} feasible ({} invalid, {} above SLO, {} dominated).",
        outcome.evaluated, outcome.feasible, d.invalid, d.above_slo, d.dominated
    );
    match outcome.cheapest_feasible() {
        Some(point) => println!(
            "Cheapest design meeting the budget: {} at ~${:.0} ({:.3} ms).",
            point.design.key(),
            point.cost_usd,
            point.latency_us / 1e3
        ),
        None => println!("No design met the budget."),
    }
    println!(
        "\nReading: every frontier row is a rational purchase — anything cheaper is \
         slower, anything faster costs more. Fast Ethernet anchors the cheap end; \
         the expensive end buys Myrinet/InfiniBand fabrics and fewer, larger clusters."
    );
}
