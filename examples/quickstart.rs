//! Quickstart: evaluate the analytical model for one system and print a
//! full performance report.
//!
//! ```text
//! cargo run --release -p hmcs-suite --example quickstart
//! ```

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_topology::transmission::Architecture;

fn main() {
    // The paper's evaluation platform: 256 nodes in 16 clusters of 16,
    // Case-1 networks (Gigabit Ethernet inside clusters, Fast Ethernet
    // between them), non-blocking fat-tree fabrics, 1 KiB messages.
    let config = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking)
        .expect("16 divides 256");

    let report = AnalyticalModel::evaluate(&config).expect("model evaluates");

    println!("System: {} clusters x {} nodes", config.clusters, config.nodes_per_cluster);
    println!(
        "Networks: ICN1 = {}, ECN1/ICN2 = {}, {} architecture",
        config.icn1.name,
        config.ecn1.name,
        config.architecture.name()
    );
    println!(
        "Message size: {} bytes; generation rate: 0.25 msg/ms per processor",
        config.message_bytes
    );
    println!();

    println!("Per-tier mean service times (topology model, eqs. 10-21):");
    println!("  ICN1: {:8.2} µs", report.service_times.icn1_us);
    println!("  ECN1: {:8.2} µs", report.service_times.ecn1_us);
    println!("  ICN2: {:8.2} µs", report.service_times.icn2_us);
    println!();

    let eq = &report.equilibrium;
    println!("Flow-blocking equilibrium (eqs. 6-7):");
    println!(
        "  effective rate: {:.3e} msg/µs per processor ({:.1}% of nominal)",
        eq.lambda_eff,
        eq.retained_fraction * 100.0
    );
    println!("  waiting processors: {:.1} of {}", eq.total_waiting, config.total_nodes());
    println!(
        "  utilizations: ICN1 {:.2}, ECN1 {:.2}, ICN2 {:.2}",
        eq.icn1.utilization, eq.ecn1.utilization, eq.icn2.utilization
    );
    println!();

    let lat = &report.latency;
    println!("Latency (eq. 15):");
    println!("  P(external)        = {:.3}", lat.external_probability);
    println!("  internal latency   = {:8.3} ms", lat.internal_latency_us / 1e3);
    println!("  external latency   = {:8.3} ms", lat.external_latency_us / 1e3);
    println!("  mean message latency = {:6.3} ms", lat.mean_message_latency_ms());
    println!();
    println!("Throughput: {:.1} messages/ms system-wide", report.throughput_per_us * 1e3);
}
