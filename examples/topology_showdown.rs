//! Interconnect showdown: the paper's two architectures plus the
//! k-ary n-cube extension, compared on identical 256-node populations.
//!
//! Shows how bisection width drives the blocking penalty (the
//! generalised eq. 20) and where each family's latency comes from.
//!
//! ```text
//! cargo run --release -p hmcs-suite --example topology_showdown
//! ```

use hmcs_topology::direct::DirectNetworkModel;
use hmcs_topology::fat_tree::FatTree;
use hmcs_topology::kary_ncube::KaryNCube;
use hmcs_topology::linear_array::LinearArray;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::{Architecture, TransmissionModel};

fn main() {
    const N: usize = 256;
    const M: u64 = 1024;
    let ge = NetworkTechnology::GIGABIT_ETHERNET;
    let sw = SwitchFabric::paper_default();

    println!("256 endpoints, Gigabit Ethernet links, 1 KiB messages.\n");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "family", "bisection", "hops", "latency(µs)", "payload(µs)", "blocking(µs)"
    );

    // The paper's non-blocking fat-tree.
    let tree = TransmissionModel::new(ge, sw, N, Architecture::NonBlocking).unwrap();
    let ft = FatTree::new(N, sw).unwrap();
    let bd = tree.breakdown(M);
    println!(
        "{:<28} {:>10} {:>10.2} {:>12.1} {:>12.1} {:>12.1}",
        "fat-tree (paper, eq.11)",
        N / 2,
        tree.mean_switch_traversals(),
        bd.total_us(),
        bd.payload_time_us,
        bd.blocking_time_us
    );
    let _ = ft;

    // The paper's blocking linear array.
    let linear = TransmissionModel::new(ge, sw, N, Architecture::Blocking).unwrap();
    let la = LinearArray::new(N, sw).unwrap();
    let bd = linear.breakdown(M);
    println!(
        "{:<28} {:>10} {:>10.2} {:>12.1} {:>12.1} {:>12.1}",
        "linear array (paper, eq.21)",
        la.bisection_width(),
        linear.mean_switch_traversals(),
        bd.total_us(),
        bd.payload_time_us,
        bd.blocking_time_us
    );

    // Extension: direct networks with intermediate bisection widths.
    for (label, cube) in [
        ("ring (256-ary 1-cube)", KaryNCube::new(256, 1).unwrap()),
        ("torus 16x16", KaryNCube::new(16, 2).unwrap()),
        ("torus 4x4x16... (4-ary 4D)", KaryNCube::new(4, 4).unwrap()),
        ("hypercube (2-ary 8-cube)", KaryNCube::hypercube(8).unwrap()),
    ] {
        let model = DirectNetworkModel::new(ge, cube, sw.latency_us()).unwrap();
        let bd = model.breakdown(M);
        println!(
            "{:<28} {:>10} {:>10.2} {:>12.1} {:>12.1} {:>12.1}",
            label,
            cube.bisection_width().map(|b| b.to_string()).unwrap_or_else(|| "~".to_string()),
            cube.mean_hop_count(),
            bd.total_us(),
            bd.payload_time_us,
            bd.blocking_time_us
        );
    }

    println!();
    println!("Reading: the generalised blocking penalty max(0, N/(2b) − 1)·M·β");
    println!("interpolates between the paper's two extremes — bisection width 1");
    println!("(linear array) pays ~127 payloads of serialisation; width N/2");
    println!("(fat-tree, hypercube) pays none; tori sit in between, trading");
    println!("bisection hardware for hop count.");
}
