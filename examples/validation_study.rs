//! Validation study: regenerate one of the paper's figures with both
//! the analytical model and the flow-level simulator and report the
//! per-point agreement — the reproduction of §6 in miniature.
//!
//! ```text
//! cargo run --release -p hmcs-suite --example validation_study [fig4|fig5|fig6|fig7]
//! ```

use hmcs_bench::experiments::{run_figure, RunOptions, ALL_FIGURES, FIG4};
use hmcs_bench::report::{ms, opt_ms, render_table};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fig4".to_string());
    let spec = ALL_FIGURES.iter().find(|s| s.id == which).copied().unwrap_or_else(|| {
        eprintln!("unknown figure {which:?}; using fig4");
        FIG4
    });

    let opts = RunOptions { messages: 10_000, warmup: 2_000, ..Default::default() };
    let data = run_figure(spec, &opts).expect("figure runs");

    let headers = [
        "clusters",
        "analysis 512 (ms)",
        "sim 512 (ms)",
        "analysis 1024 (ms)",
        "sim 1024 (ms)",
        "worst err",
    ];
    let rows: Vec<Vec<String>> = data
        .rows
        .iter()
        .map(|r| {
            vec![
                r.clusters.to_string(),
                ms(r.analysis_512_ms),
                opt_ms(r.sim_512_ms),
                ms(r.analysis_1024_ms),
                opt_ms(r.sim_1024_ms),
                format!("{:.1}%", r.worst_relative_error().unwrap_or(0.0) * 100.0),
            ]
        })
        .collect();
    println!("{}", render_table(&format!("{} — {}", spec.id, spec.caption), &headers, &rows));

    let worst = data.rows.iter().filter_map(|r| r.worst_relative_error()).fold(0.0f64, f64::max);
    println!("Worst analysis-vs-simulation deviation across the figure: {:.1}%", worst * 100.0);
    println!("The paper reports that the model predicts latency \"with good degree of accuracy\";");
    println!("this reproduction quantifies that claim for {}.", spec.id);
}
