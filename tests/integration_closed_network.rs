//! The flow-blocking feedback (assumption 4) makes the real system a
//! **closed** queueing network. These tests pin the paper's open-model
//! approximation against the exact closed-network solutions from
//! `hmcs-queueing::closed` and against simulation.

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_core::service::ServiceTimes;
use hmcs_queueing::closed::{mva, MachineRepairman, MvaStation};
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_topology::transmission::Architecture;

/// At C = 1 the whole system is N sources feeding one ICN1 queue —
/// exactly the machine-repairman model. The exact repairman solution,
/// the paper's fixed-point approximation and the simulation must agree.
#[test]
fn single_cluster_system_is_a_machine_repairman() {
    let cfg = SystemConfig::paper_preset(Scenario::Case1, 1, Architecture::NonBlocking).unwrap();
    let service = ServiceTimes::compute(&cfg).unwrap();

    // Exact closed solution.
    let exact =
        MachineRepairman::new(cfg.total_nodes() as u32, cfg.lambda_per_us, 1.0 / service.icn1_us)
            .unwrap()
            .solve();

    // The paper's open approximation.
    let analysis = AnalyticalModel::evaluate(&cfg).unwrap();

    // Simulation.
    let sim = FlowSimulator::run(
        &SimConfig::new(cfg).with_messages(8_000).with_warmup(2_000).with_seed(4),
    )
    .unwrap();

    // Exact vs simulation: tight agreement (same system).
    let rel_sim = (exact.mean_response_time - sim.mean_latency_us).abs() / sim.mean_latency_us;
    assert!(
        rel_sim < 0.05,
        "repairman {:.1} vs sim {:.1}",
        exact.mean_response_time,
        sim.mean_latency_us
    );

    // Paper approximation vs exact: close but approximate.
    let rel_model = (analysis.latency.mean_message_latency_us - exact.mean_response_time).abs()
        / exact.mean_response_time;
    assert!(
        rel_model < 0.10,
        "model {:.1} vs repairman {:.1}",
        analysis.latency.mean_message_latency_us,
        exact.mean_response_time
    );

    // Throughputs agree too.
    let rel_x = (analysis.equilibrium.lambda_eff - exact.effective_rate_per_machine).abs()
        / exact.effective_rate_per_machine;
    assert!(rel_x < 0.05);
}

/// MVA over the full centre set approximates the multi-cluster system
/// as a closed product-form network; its cycle structure must agree
/// with the simulator's measured effective rate. (MVA treats the C
/// parallel ICN1/ECN1 queues via per-class demands; for the symmetric
/// uniform system the visit ratios are P-weighted.)
#[test]
fn mva_cross_checks_the_effective_rate() {
    let cfg = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let service = ServiceTimes::compute(&cfg).unwrap();
    let p = hmcs_core::routing::external_probability(cfg.clusters, cfg.nodes_per_cluster);

    // Closed-network view: each customer's cycle = think (1/lambda) +
    // with prob (1-P) one ICN1 visit + with prob P (2 ECN1 + 1 ICN2).
    // Demands are spread over C identical ICN1/ECN1 stations; represent
    // the per-station load by scaling visit ratios by 1/C.
    let c = cfg.clusters as f64;
    let mut stations = vec![MvaStation::Delay { demand: 1.0 / cfg.lambda_per_us }];
    for _ in 0..cfg.clusters {
        stations.push(MvaStation::Queueing { demand: (1.0 - p) * service.icn1_us / c });
        stations.push(MvaStation::Queueing { demand: p * 2.0 * service.ecn1_us / c });
    }
    stations.push(MvaStation::Queueing { demand: p * service.icn2_us });
    let sol = mva(&stations, cfg.total_nodes() as u32).unwrap();
    let lambda_eff_mva = sol.throughput / cfg.total_nodes() as f64;

    let sim = FlowSimulator::run(
        &SimConfig::new(cfg).with_messages(8_000).with_warmup(2_000).with_seed(6),
    )
    .unwrap();
    let rel = (lambda_eff_mva - sim.effective_lambda_per_us).abs() / sim.effective_lambda_per_us;
    assert!(
        rel < 0.10,
        "MVA lambda_eff {lambda_eff_mva:.3e} vs sim {:.3e}",
        sim.effective_lambda_per_us
    );
}

/// The paper's fixed point and exact MVA must agree on throughput in a
/// single-bottleneck regime (large C: ICN2 dominates).
#[test]
fn fixed_point_matches_mva_at_the_bottleneck() {
    let cfg = SystemConfig::paper_preset(Scenario::Case1, 256, Architecture::NonBlocking).unwrap();
    let service = ServiceTimes::compute(&cfg).unwrap();
    let analysis = AnalyticalModel::evaluate(&cfg).unwrap();

    // Closed model: think + ICN2 only (P = 1 at C = 256, ICN2 is the
    // bottleneck; ECN1 queues are per-cluster and lightly loaded).
    let p = 1.0f64;
    let stations = [
        MvaStation::Delay { demand: 1.0 / cfg.lambda_per_us + p * 2.0 * service.ecn1_us },
        MvaStation::Queueing { demand: p * service.icn2_us },
    ];
    let sol = mva(&stations, 256).unwrap();
    let lambda_eff_mva = sol.throughput / 256.0;
    let rel = (analysis.equilibrium.lambda_eff - lambda_eff_mva).abs() / lambda_eff_mva;
    assert!(
        rel < 0.05,
        "fixed point {:.3e} vs MVA {:.3e}",
        analysis.equilibrium.lambda_eff,
        lambda_eff_mva
    );
}
