//! Cross-crate integration tests: the analytical model's closed forms
//! against the general-purpose queueing machinery it specialises.

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::rates::TrafficRates;
use hmcs_core::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
use hmcs_core::service::ServiceTimes;
use hmcs_queueing::jackson::{JacksonNetwork, Station};
use hmcs_queueing::mm1::MM1;
use hmcs_topology::transmission::Architecture;

/// The paper's latency composition (eq. 15) must equal an explicit
/// Jackson-network path computation over the same centres at the same
/// converged rates.
#[test]
fn eq15_equals_explicit_jackson_path_latency() {
    for clusters in [2usize, 8, 64] {
        let cfg = SystemConfig::paper_preset(Scenario::Case1, clusters, Architecture::NonBlocking)
            .unwrap();
        let report = AnalyticalModel::evaluate(&cfg).unwrap();
        let eq = &report.equilibrium;
        let st = &report.service_times;

        // Build the explicit 3-station network at the converged rates.
        let (mu1, mu_e, mu2) = st.rates();
        let net = JacksonNetwork::new(
            vec![
                Station::single(mu1, eq.rates.icn1),
                Station::single(mu_e, eq.rates.ecn1_total),
                Station::single(mu2, eq.rates.icn2),
            ],
            vec![vec![0.0; 3], vec![0.0; 3], vec![0.0; 3]],
        )
        .unwrap();
        let sol = net.solve().unwrap();
        let p = eq.rates.external_probability;
        let explicit =
            sol.mixed_path_latency(&[(1.0 - p, &[0usize][..]), (p, &[1usize, 2, 1][..])]);
        let rel = (explicit - report.latency.mean_message_latency_us).abs()
            / report.latency.mean_message_latency_us;
        assert!(
            rel < 1e-9,
            "C={clusters}: eq.15 {} vs Jackson {explicit}",
            report.latency.mean_message_latency_us
        );
    }
}

/// Per-centre sojourn times must equal 1/(µ−λ) (eq. 16) at the
/// converged rates under exponential service.
#[test]
fn eq16_sojourns_match_mm1_closed_forms() {
    let cfg = SystemConfig::paper_preset(Scenario::Case2, 16, Architecture::Blocking).unwrap();
    let report = AnalyticalModel::evaluate(&cfg).unwrap();
    let st = report.service_times;
    let eq = report.equilibrium;
    for (arrival, mean_service, sojourn) in [
        (eq.rates.icn1, st.icn1_us, eq.icn1.sojourn_us),
        (eq.rates.ecn1_total, st.ecn1_us, eq.ecn1.sojourn_us),
        (eq.rates.icn2, st.icn2_us, eq.icn2.sojourn_us),
    ] {
        let q = MM1::new(arrival, 1.0 / mean_service).unwrap();
        assert!((q.mean_sojourn_time() - sojourn).abs() < 1e-9);
    }
}

/// The traffic equations must conserve flow at every grid point and
/// both architectures.
#[test]
fn traffic_conservation_across_the_grid() {
    for scenario in [Scenario::Case1, Scenario::Case2] {
        for arch in [Architecture::NonBlocking, Architecture::Blocking] {
            for &c in &PAPER_CLUSTER_COUNTS {
                let cfg = SystemConfig::paper_preset(scenario, c, arch).unwrap();
                let eq = AnalyticalModel::evaluate(&cfg).unwrap().equilibrium;
                let rates = TrafficRates::compute(&cfg, eq.lambda_eff);
                assert!(rates.generation_rate_residual(&cfg) < 1e-10);
                // ECN1 forward equals feedback (eqs. 2 and 4).
                assert!((rates.ecn1_forward - rates.ecn1_feedback).abs() < 1e-15);
            }
        }
    }
}

/// The C = 16 kink: the paper attributes the latency inflection to all
/// networks collapsing to a single switch. Verify the latency curve's
/// slope changes there for the non-blocking Case-1 system.
#[test]
fn c16_kink_is_visible_in_the_latency_curve() {
    let lat = |c: usize| {
        let cfg =
            SystemConfig::paper_preset(Scenario::Case1, c, Architecture::NonBlocking).unwrap();
        AnalyticalModel::evaluate(&cfg).unwrap().latency.mean_message_latency_ms()
    };
    // Between C=16 and C=32 the ICN2 crosses the single-switch
    // boundary (32 > Pr = 24): the latency jump from 16 to 32 must be
    // larger than the jump from 8 to 16.
    let jump_8_16 = lat(16) - lat(8);
    let jump_16_32 = lat(32) - lat(16);
    assert!(jump_16_32 > jump_8_16, "kink missing: 8->16 {jump_8_16}, 16->32 {jump_16_32}");
}

/// Service times must be consistent between the model facade and a
/// direct ServiceTimes computation (same config, same numbers).
#[test]
fn facade_and_direct_service_times_agree() {
    let cfg = SystemConfig::paper_preset(Scenario::Case1, 4, Architecture::Blocking).unwrap();
    let direct = ServiceTimes::compute(&cfg).unwrap();
    let via_model = AnalyticalModel::evaluate(&cfg).unwrap().service_times;
    assert_eq!(direct, via_model);
}

/// Case symmetry: Case 1 at C=1 exercises only GE ICN1s; Case 2 at
/// C=256 routes everything through GE ECN1/ICN2. Their service-time
/// building blocks must match where the topology sizes coincide.
#[test]
fn case_symmetry_of_technology_assignment() {
    let c1 = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let c2 = SystemConfig::paper_preset(Scenario::Case2, 16, Architecture::NonBlocking).unwrap();
    let st1 = ServiceTimes::compute(&c1).unwrap();
    let st2 = ServiceTimes::compute(&c2).unwrap();
    // With C = N0 = 16 every tier is one switch, so the GE tier of one
    // case equals the GE tier of the other.
    assert!((st1.icn1_us - st2.ecn1_us).abs() < 1e-12);
    assert!((st2.icn1_us - st1.ecn1_us).abs() < 1e-12);
}
