//! Cross-crate observability integration: the metrics registry in
//! `hmcs-core` must see traffic from every layer that claims to be
//! instrumented — the fixed-point solver, the batch pool, the
//! flow/packet simulators and the replication driver — and the whole
//! pipeline must stay numerically identical with recording disabled.

use hmcs_core::batch::BatchOptions;
use hmcs_core::config::SystemConfig;
use hmcs_core::metrics::{self, keys};
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::{Scenario, PAPER_CLUSTER_COUNTS, PAPER_TOTAL_NODES};
use hmcs_core::sweep;
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_sim::metrics_keys as sim_keys;
use hmcs_sim::replication::{run_replications, Simulator};
use hmcs_sim::shard::{run_sharded, uniform_partition, ShardOptions};
use hmcs_topology::transmission::Architecture;
use std::sync::Mutex;

/// Both tests toggle or depend on the process-global enabled flag, so
/// they must not interleave. Poisoning is fine to ignore: a failed
/// test already failed.
static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn system() -> SystemConfig {
    SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap()
}

/// One sweep + one simulation + one replication batch must leave a
/// coherent trail in the global registry: solver counters from core,
/// pool counters from batch, event/replication counters from sim.
#[test]
fn every_layer_reports_into_the_global_registry() {
    let _serial = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    metrics::set_enabled(true);
    let solver_before = metrics::counter(keys::SOLVER_SOLVES).get();
    let batch_before = metrics::counter(keys::BATCH_ITEMS).get();
    let flow_before = metrics::counter(sim_keys::FLOW_EVENTS).get();
    let reps_before = metrics::counter(sim_keys::REPLICATION_RUNS).get();
    let shards_before = metrics::counter(sim_keys::SHARD_RUNS).get();
    let bnd_in_before = metrics::counter(sim_keys::SHARD_BOUNDARY_IN).get();
    let bnd_out_before = metrics::counter(sim_keys::SHARD_BOUNDARY_OUT).get();

    let base = system();
    let points = sweep::cluster_sweep_with(
        &base,
        PAPER_TOTAL_NODES,
        &PAPER_CLUSTER_COUNTS,
        BatchOptions::with_workers(3),
    )
    .unwrap();
    assert_eq!(points.len(), PAPER_CLUSTER_COUNTS.len());

    let sim_cfg = SimConfig::new(base).with_messages(2_000).with_warmup(500).with_seed(77);
    FlowSimulator::run(&sim_cfg).unwrap();
    run_replications(&sim_cfg, Simulator::Flow, 3).unwrap();
    let shard_cfg = SimConfig::new(base).with_messages(800).with_warmup(200).with_seed(78);
    run_sharded(
        &shard_cfg,
        &uniform_partition(base.clusters, base.nodes_per_cluster),
        &ShardOptions::default(),
    )
    .unwrap();

    let solves = metrics::counter(keys::SOLVER_SOLVES).get() - solver_before;
    assert!(
        solves >= PAPER_CLUSTER_COUNTS.len() as u64,
        "sweep of {} points recorded only {solves} solves",
        PAPER_CLUSTER_COUNTS.len()
    );
    assert!(
        metrics::counter(keys::BATCH_ITEMS).get() - batch_before
            >= PAPER_CLUSTER_COUNTS.len() as u64,
        "batch pool did not count the sweep items"
    );
    assert!(
        metrics::counter(sim_keys::FLOW_EVENTS).get() > flow_before,
        "flow simulator did not report its event count"
    );
    assert_eq!(
        metrics::counter(sim_keys::REPLICATION_RUNS).get() - reps_before,
        3,
        "replication driver must count each run"
    );
    // The sharded driver: 8 shards × 2 fixed-point passes, exchanging
    // boundary load in both directions.
    assert_eq!(
        metrics::counter(sim_keys::SHARD_RUNS).get() - shards_before,
        2 * base.clusters as u64,
        "shard driver must count each shard of each pass"
    );
    assert!(
        metrics::counter(sim_keys::SHARD_BOUNDARY_IN).get() > bnd_in_before,
        "shard driver must count background boundary messages in"
    );
    assert!(
        metrics::counter(sim_keys::SHARD_BOUNDARY_OUT).get() > bnd_out_before,
        "shard driver must count external boundary messages out"
    );

    // The snapshot renders every key it saw; spot-check the categories.
    let rendered = metrics::global().snapshot().render();
    for key in [
        keys::SOLVER_SOLVES,
        keys::BATCH_ITEMS,
        sim_keys::FLOW_EVENTS,
        sim_keys::SHARD_RUNS,
        sim_keys::SHARD_BOUNDARY_IN,
        sim_keys::SHARD_BOUNDARY_OUT,
        sim_keys::SHARD_BUSY_US,
        sim_keys::SHARD_IDLE_US,
    ] {
        assert!(rendered.contains(key), "snapshot render missing {key}");
    }
}

/// Disabling the global flag silences counters without perturbing a
/// single bit of the simulation or analytical output.
#[test]
fn disabling_metrics_changes_counters_not_results() {
    struct ReEnable;
    impl Drop for ReEnable {
        fn drop(&mut self) {
            metrics::set_enabled(true);
        }
    }
    let _serial = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ReEnable;

    let base = system();
    let sim_cfg = SimConfig::new(base).with_messages(1_500).with_warmup(300).with_seed(11);

    metrics::set_enabled(true);
    let report_on = AnalyticalModel::evaluate(&base).unwrap();
    let sim_on = FlowSimulator::run(&sim_cfg).unwrap();

    metrics::set_enabled(false);
    let flow_before = metrics::counter(sim_keys::FLOW_EVENTS).get();
    let report_off = AnalyticalModel::evaluate(&base).unwrap();
    let sim_off = FlowSimulator::run(&sim_cfg).unwrap();
    let flow_after = metrics::counter(sim_keys::FLOW_EVENTS).get();

    assert_eq!(flow_before, flow_after, "disabled counters must not move");
    assert_eq!(report_on, report_off, "analytical output must not depend on metrics");
    assert_eq!(sim_on.mean_latency_us, sim_off.mean_latency_us);
    assert_eq!(sim_on.messages, sim_off.messages);
}
