//! Output-analysis integration: the replication driver's confidence
//! intervals must be statistically meaningful — the analytical model's
//! prediction should fall inside (or very near) the replication CI, and
//! the CI must shrink with more replications.

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::replication::{run_replications, Simulator};
use hmcs_topology::transmission::Architecture;

fn base(messages: u64) -> SimConfig {
    let sys = SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap();
    SimConfig::new(sys).with_messages(messages).with_warmup(messages / 4).with_seed(500)
}

#[test]
fn model_prediction_lies_within_replication_interval() {
    let summary = run_replications(&base(4_000), Simulator::Flow, 6).unwrap();
    let sys = base(4_000).system;
    let model = AnalyticalModel::evaluate(&sys).unwrap().latency.mean_message_latency_us;
    let half = summary.latency_ci95_us();
    let center = summary.mean_latency_us();
    // Allow 2x the CI to absorb the model's own bias (~1-2%).
    assert!(
        (model - center).abs() < 2.0 * half + 0.02 * center,
        "model {model:.1} vs replications {center:.1} ± {half:.1}"
    );
}

#[test]
fn intervals_shrink_with_more_replications() {
    let few = run_replications(&base(1_500), Simulator::Flow, 3).unwrap();
    let many = run_replications(&base(1_500), Simulator::Flow, 12).unwrap();
    assert!(
        many.latency_ci95_us() < few.latency_ci95_us(),
        "12 reps {} vs 3 reps {}",
        many.latency_ci95_us(),
        few.latency_ci95_us()
    );
}

#[test]
fn replication_effective_rates_are_tight() {
    // lambda_eff is a ratio estimator over the whole run; its spread
    // across replications should be small relative to its mean.
    let summary = run_replications(&base(3_000), Simulator::Flow, 5).unwrap();
    let mean = summary.mean_effective_lambda();
    let sd = summary.effective_lambdas.std_dev();
    assert!(sd / mean < 0.05, "cv {}", sd / mean);
    // And it should track the model's fixed point.
    let sys = base(3_000).system;
    let model = AnalyticalModel::evaluate(&sys).unwrap().equilibrium.lambda_eff;
    assert!((model - mean).abs() / mean < 0.08, "model {model:.3e} vs sim {mean:.3e}");
}
