//! Loopback end-to-end tests for the `hmcs-serve` daemon.
//!
//! Each test starts a real [`Server`] on port 0 and talks to it over
//! TCP from client threads, asserting the serving-stack guarantees the
//! crate advertises: served results are **bit-identical** to
//! in-process evaluation, identical concurrent requests **coalesce**
//! into fewer computations, the admission queue **sheds load** with
//! `503` + `Retry-After`, queue waits past the deadline are refused,
//! malformed input yields escaped structured errors, and shutdown
//! **drains** every accepted request.
//!
//! The metrics registry is process-global and shared across tests, so
//! every test (a) serialises on [`SERIAL`] and (b) asserts on counter
//! *deltas*, never absolute values.
//!
//! Since the server speaks HTTP/1.1 keep-alive, the one-shot helpers
//! send `connection: close`; the keep-alive tests read responses by
//! their `content-length` through a shared [`BufReader`] instead.

use hmcs_core::json::parse_json;
use hmcs_core::metrics;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_serve::keys;
use hmcs_serve::server::{Server, ServerConfig};
use hmcs_topology::transmission::Architecture;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialise() -> MutexGuard<'static, ()> {
    // A panicking test poisons the mutex; later tests still run.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Sends raw bytes, returns the full response (headers + body). The
/// caller's request must make the server close afterwards
/// (`connection: close` or an error status) or this read blocks until
/// the idle timeout.
fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("request write");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("response read");
    out
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    send_raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Serialises one request *without* `connection: close`, for
/// keep-alive and pipelining tests.
fn keepalive_request(path: &str, body: &str) -> Vec<u8> {
    format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len()).into_bytes()
}

/// Reads exactly one response (head + `content-length` body) from a
/// kept-alive connection. Returns `None` on EOF before a status line.
fn read_keepalive_response(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("response read");
        if n == 0 {
            assert!(head.is_empty(), "connection died mid-response: {head:?}");
            return None;
        }
        head.push_str(&line);
        if line == "\r\n" {
            break;
        }
    }
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
        .and_then(|v| v.trim().parse().ok())
        .expect("content-length header");
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    Some(head + std::str::from_utf8(&body).expect("UTF-8 body"))
}

fn status_of(response: &str) -> u16 {
    response.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status line")
}

fn body_of(response: &str) -> &str {
    response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

fn poll_until(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        thread::sleep(Duration::from_millis(5));
    }
    false
}

fn test_config() -> ServerConfig {
    ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() }
}

#[test]
fn served_evaluate_is_bit_identical_to_in_process_evaluation() {
    let _guard = serialise();
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    for (clusters, scenario, architecture) in [
        (16usize, Scenario::Case1, Architecture::NonBlocking),
        (64, Scenario::Case2, Architecture::Blocking),
    ] {
        let scenario_name = match scenario {
            Scenario::Case1 => "case1",
            Scenario::Case2 => "case2",
        };
        let arch_name = match architecture {
            Architecture::NonBlocking => "nonblocking",
            Architecture::Blocking => "blocking",
        };
        let request = format!(
            r#"{{"clusters":{clusters},"scenario":"{scenario_name}","architecture":"{arch_name}"}}"#
        );
        let response = post(addr, "/v1/evaluate", &request);
        assert_eq!(status_of(&response), 200, "{response}");
        let doc = parse_json(body_of(&response)).expect("valid JSON body");

        let config = hmcs_core::SystemConfig::new(
            clusters,
            256 / clusters,
            1024,
            hmcs_core::scenario::PAPER_LAMBDA_PER_US,
            scenario,
            architecture,
        )
        .unwrap();
        let direct = AnalyticalModel::evaluate(&config).unwrap();

        let served = |path: &[&str]| -> f64 {
            let mut v = &doc;
            for key in path {
                v = v.get(key).unwrap_or_else(|| panic!("{path:?} missing"));
            }
            v.as_num().unwrap_or_else(|| panic!("{path:?} not a number"))
        };
        assert_eq!(
            served(&["latency_us", "mean"]).to_bits(),
            direct.latency.mean_message_latency_us.to_bits(),
            "mean latency must survive the wire bit for bit (C={clusters})"
        );
        assert_eq!(
            served(&["latency_us", "internal"]).to_bits(),
            direct.latency.internal_latency_us.to_bits()
        );
        assert_eq!(
            served(&["latency_us", "external"]).to_bits(),
            direct.latency.external_latency_us.to_bits()
        );
        assert_eq!(served(&["throughput_per_us"]).to_bits(), direct.throughput_per_us.to_bits());
        assert_eq!(
            served(&["utilization", "bottleneck"]).to_bits(),
            direct.equilibrium.bottleneck_utilization().to_bits()
        );
    }
    server.shutdown();
}

#[test]
fn served_sweep_matches_in_process_sweep() {
    let _guard = serialise();
    let server = Server::start(test_config()).unwrap();
    let response = post(
        server.local_addr(),
        "/v1/sweep",
        r#"{"clusters":16,"parameter":"clusters","values":[4,16,64]}"#,
    );
    assert_eq!(status_of(&response), 200, "{response}");
    let doc = parse_json(body_of(&response)).unwrap();
    let points = doc.get("points").and_then(|p| p.as_arr()).expect("points array");
    assert_eq!(points.len(), 3);
    for (point, clusters) in points.iter().zip([4usize, 16, 64]) {
        let config = hmcs_core::SystemConfig::new(
            clusters,
            256 / clusters,
            1024,
            hmcs_core::scenario::PAPER_LAMBDA_PER_US,
            Scenario::Case1,
            Architecture::NonBlocking,
        )
        .unwrap();
        let direct = AnalyticalModel::evaluate(&config).unwrap();
        let served = point.get("mean_latency_us").and_then(|m| m.as_num()).unwrap();
        assert_eq!(served.to_bits(), direct.latency.mean_message_latency_us.to_bits());
    }
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_coalesce() {
    let _guard = serialise();
    // The artificial handler latency holds the first request's
    // computation open long enough that the others arrive while it is
    // in flight — making the coalescing window deterministic.
    let server = Server::start(ServerConfig {
        workers: 4,
        handler_latency: Duration::from_millis(200),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr();

    let computations_before = metrics::counter(keys::COALESCE_COMPUTATIONS).get();
    let hits_before = metrics::counter(keys::COALESCE_HITS).get();

    const CLIENTS: usize = 8;
    let bodies: Vec<String> = {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| thread::spawn(move || post(addr, "/v1/evaluate", r#"{"clusters":32}"#)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    for response in &bodies {
        assert_eq!(status_of(response), 200, "{response}");
    }
    let first = body_of(&bodies[0]);
    assert!(
        bodies.iter().all(|r| body_of(r) == first),
        "coalesced responses must be byte-identical"
    );

    let computations = metrics::counter(keys::COALESCE_COMPUTATIONS).get() - computations_before;
    let hits = metrics::counter(keys::COALESCE_HITS).get() - hits_before;
    assert!(
        (computations as usize) < CLIENTS,
        "computation count ({computations}) must be below request count ({CLIENTS})"
    );
    assert!(hits >= 1, "at least one request must be served from a peer's computation");
    assert_eq!(computations as usize + hits as usize, CLIENTS);
    server.shutdown();
}

#[test]
fn admission_queue_sheds_load_with_retry_after() {
    let _guard = serialise();
    // One worker busy for 500 ms + a single queue slot: the third
    // concurrent request deterministically finds the budget exhausted.
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        handler_latency: Duration::from_millis(500),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let started_before = metrics::counter(keys::REQUESTS_STARTED).get();
    let shed_before = metrics::counter(keys::ADMISSION_REJECTED).get();

    let first = thread::spawn(move || post(addr, "/v1/evaluate", r#"{"clusters":4}"#));
    assert!(
        poll_until(Duration::from_secs(2), || {
            metrics::counter(keys::REQUESTS_STARTED).get() > started_before
        }),
        "worker must pick up the first request"
    );
    let second = thread::spawn(move || post(addr, "/v1/evaluate", r#"{"clusters":4}"#));
    assert!(
        poll_until(Duration::from_secs(2), || server.queue_len() == 1),
        "second request must occupy the only queue slot"
    );

    let third = post(addr, "/v1/evaluate", r#"{"clusters":4}"#);
    assert_eq!(status_of(&third), 503, "{third}");
    assert!(third.contains("retry-after:"), "shed response must carry Retry-After: {third}");
    assert!(third.contains(r#""code":"overloaded""#), "{third}");
    assert!(metrics::counter(keys::ADMISSION_REJECTED).get() > shed_before);

    // The admitted requests are unaffected by the shed one.
    assert_eq!(status_of(&first.join().unwrap()), 200);
    assert_eq!(status_of(&second.join().unwrap()), 200);
    server.shutdown();
}

#[test]
fn queue_wait_past_deadline_is_refused_without_computing() {
    let _guard = serialise();
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        deadline: Duration::from_millis(100),
        handler_latency: Duration::from_millis(400),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let started_before = metrics::counter(keys::REQUESTS_STARTED).get();
    let expired_before = metrics::counter(keys::DEADLINE_EXPIRED).get();

    // First request occupies the worker for 400 ms; the second sits in
    // queue past its 100 ms deadline and must be refused unprocessed.
    let first = thread::spawn(move || post(addr, "/v1/evaluate", r#"{"clusters":8}"#));
    assert!(poll_until(Duration::from_secs(2), || {
        metrics::counter(keys::REQUESTS_STARTED).get() > started_before
    }));
    let second = post(addr, "/v1/evaluate", r#"{"clusters":8}"#);
    assert_eq!(status_of(&second), 503, "{second}");
    assert!(second.contains(r#""code":"deadline_expired""#), "{second}");
    assert!(metrics::counter(keys::DEADLINE_EXPIRED).get() > expired_before);
    assert_eq!(status_of(&first.join().unwrap()), 200, "in-deadline request still served");
    server.shutdown();
}

#[test]
fn malformed_input_yields_escaped_structured_errors() {
    let _guard = serialise();
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    // A body full of quotes and control bytes: the error must come
    // back as *valid* JSON with everything escaped.
    let hostile = "{\"a\u{1}\"\u{2}: \"un\"terminated";
    let response = post(addr, "/v1/evaluate", hostile);
    assert_eq!(status_of(&response), 400, "{response}");
    let body = body_of(&response);
    parse_json(body).expect("error body must parse as JSON despite hostile input");
    assert!(!body.chars().any(|c| (c as u32) < 0x20 && c != '\n'), "no raw control bytes");

    // An unknown field whose *name* carries hostile bytes — the echo
    // of the field name must be escaped on the wire.
    let hostile_field = "{\"cl\\u0001usters\\\"\": 4}";
    let response = post(addr, "/v1/evaluate", hostile_field);
    assert_eq!(status_of(&response), 400, "{response}");
    let body = body_of(&response);
    let doc = parse_json(body).expect("valid JSON");
    let message = doc.get("error").and_then(|e| e.get("message")).and_then(|m| m.as_str()).unwrap();
    assert!(message.contains("cl\u{1}usters\""), "decoded message preserves the field name");
    assert!(body.contains("\\u0001"), "control byte escaped on the wire: {body}");

    // Non-HTTP garbage on the socket gets a 400, not a hang or drop.
    let response = send_raw(addr, b"\x00\x01\x02 total nonsense\r\n\r\n");
    assert_eq!(status_of(&response), 400, "{response}");

    // Wrong method and wrong path keep structured shapes too.
    let response = send_raw(addr, b"PUT /v1/evaluate HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert_eq!(status_of(&response), 405);
    let response = send_raw(addr, b"GET /v9/nothing HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert_eq!(status_of(&response), 404);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_accepted_request() {
    let _guard = serialise();
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        handler_latency: Duration::from_millis(200),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let accepted_before = metrics::counter(keys::REQUESTS_ACCEPTED).get();

    const CLIENTS: usize = 6;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            thread::spawn(move || {
                post(addr, "/v1/evaluate", &format!(r#"{{"clusters":{}}}"#, 1 << i))
            })
        })
        .collect();
    assert!(
        poll_until(Duration::from_secs(2), || {
            metrics::counter(keys::REQUESTS_ACCEPTED).get() - accepted_before >= CLIENTS as u64
        }),
        "all clients must be admitted before shutdown begins"
    );

    // Shut down while most requests are still queued or mid-compute:
    // every one of them must still receive a complete response.
    server.shutdown();
    for handle in handles {
        let response = handle.join().expect("client thread");
        assert_eq!(status_of(&response), 200, "drained request completed: {response}");
        parse_json(body_of(&response)).expect("complete, valid body after drain");
    }

    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err(), "post-shutdown connects must fail");
}

#[test]
fn keep_alive_connection_serves_bit_identical_results_including_pipelined() {
    let _guard = serialise();
    let server = Server::start(test_config()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let direct_mean = |clusters: usize| -> f64 {
        let config = hmcs_core::SystemConfig::new(
            clusters,
            256 / clusters,
            1024,
            hmcs_core::scenario::PAPER_LAMBDA_PER_US,
            Scenario::Case1,
            Architecture::NonBlocking,
        )
        .unwrap();
        AnalyticalModel::evaluate(&config).unwrap().latency.mean_message_latency_us
    };
    let served_mean = |response: &str| -> f64 {
        parse_json(body_of(response))
            .unwrap()
            .get("latency_us")
            .and_then(|l| l.get("mean"))
            .and_then(|m| m.as_num())
            .expect("latency_us.mean")
    };

    // Sequential reuse: several distinct evaluations over one socket.
    for clusters in [4usize, 16, 64] {
        let body = format!(r#"{{"clusters":{clusters}}}"#);
        (&stream).write_all(&keepalive_request("/v1/evaluate", &body)).unwrap();
        let response = read_keepalive_response(&mut reader).expect("response on live connection");
        assert_eq!(status_of(&response), 200, "{response}");
        assert!(response.contains("connection: keep-alive\r\n"), "{response}");
        assert_eq!(
            served_mean(&response).to_bits(),
            direct_mean(clusters).to_bits(),
            "sequential keep-alive result must be bit-identical (C={clusters})"
        );
    }

    // Pipelined: three requests in one write, three in-order responses.
    let mut burst = Vec::new();
    for clusters in [8usize, 32, 128] {
        burst.extend(keepalive_request("/v1/evaluate", &format!(r#"{{"clusters":{clusters}}}"#)));
    }
    (&stream).write_all(&burst).unwrap();
    for clusters in [8usize, 32, 128] {
        let response = read_keepalive_response(&mut reader).expect("pipelined response");
        assert_eq!(status_of(&response), 200, "{response}");
        assert_eq!(
            served_mean(&response).to_bits(),
            direct_mean(clusters).to_bits(),
            "pipelined result must be bit-identical and in order (C={clusters})"
        );
    }
    drop(stream);
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_closed_after_the_timeout() {
    let _guard = serialise();
    let server =
        Server::start(ServerConfig { idle_timeout: Duration::from_millis(150), ..test_config() })
            .unwrap();
    let idle_closed_before = metrics::counter(keys::CONN_IDLE_CLOSED).get();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream).write_all(&keepalive_request("/v1/evaluate", r#"{"clusters":4}"#)).unwrap();
    let response = read_keepalive_response(&mut reader).expect("first response");
    assert_eq!(status_of(&response), 200);

    // Then go quiet: the server must hang up, not hold the worker.
    let waited = Instant::now();
    assert!(
        read_keepalive_response(&mut reader).is_none(),
        "server must close the idle connection"
    );
    assert!(waited.elapsed() >= Duration::from_millis(100), "not closed before the idle window");
    assert!(metrics::counter(keys::CONN_IDLE_CLOSED).get() > idle_closed_before);
    server.shutdown();
}

#[test]
fn connection_close_is_honored_mid_stream() {
    let _guard = serialise();
    let server = Server::start(test_config()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Three pipelined requests; the second says `Connection: close`.
    // The server must answer the first two and drop the third.
    let mut burst = keepalive_request("/v1/evaluate", r#"{"clusters":4}"#);
    burst.extend_from_slice(
        b"POST /v1/evaluate HTTP/1.1\r\nconnection: close\r\ncontent-length: 15\r\n\r\n{\"clusters\":16}",
    );
    burst.extend(keepalive_request("/v1/evaluate", r#"{"clusters":64}"#));
    (&stream).write_all(&burst).unwrap();

    let first = read_keepalive_response(&mut reader).expect("first response");
    assert_eq!(status_of(&first), 200);
    assert!(first.contains("connection: keep-alive\r\n"), "{first}");
    let second = read_keepalive_response(&mut reader).expect("second response");
    assert_eq!(status_of(&second), 200);
    assert!(second.contains("connection: close\r\n"), "close advertised mid-stream: {second}");
    assert!(
        read_keepalive_response(&mut reader).is_none(),
        "requests pipelined behind Connection: close must not be answered"
    );
    server.shutdown();
}

#[test]
fn request_cap_evicts_long_lived_connections() {
    let _guard = serialise();
    let server = Server::start(ServerConfig { max_conn_requests: 3, ..test_config() }).unwrap();
    let cap_closed_before = metrics::counter(keys::CONN_CAP_CLOSED).get();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    for i in 1..=3u32 {
        (&stream).write_all(&keepalive_request("/v1/evaluate", r#"{"clusters":4}"#)).unwrap();
        let response = read_keepalive_response(&mut reader).expect("response under the cap");
        assert_eq!(status_of(&response), 200);
        let expected = if i == 3 { "connection: close\r\n" } else { "connection: keep-alive\r\n" };
        assert!(response.contains(expected), "request {i}: {response}");
    }
    assert!(
        read_keepalive_response(&mut reader).is_none(),
        "connection must be gone after the cap"
    );
    assert!(metrics::counter(keys::CONN_CAP_CLOSED).get() > cap_closed_before);

    // The cap evicts the connection, not the client: a fresh
    // connection serves again.
    let response = post(server.local_addr(), "/v1/evaluate", r#"{"clusters":4}"#);
    assert_eq!(status_of(&response), 200);
    server.shutdown();
}

#[test]
fn micro_batching_groups_distinct_points_with_bit_identical_results() {
    let _guard = serialise();
    let server = Server::start(ServerConfig {
        workers: 8,
        batch_window: Duration::from_millis(300),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let batches_before = metrics::counter(keys::BATCH_BATCHES).get();
    let items_before = metrics::counter(keys::BATCH_BATCHED_ITEMS).get();

    // Five *distinct* model points land well inside one 300 ms gather
    // window, so the batcher must run fewer par_map calls than points.
    let cluster_counts = [2usize, 4, 8, 32, 128];
    let handles: Vec<_> = cluster_counts
        .iter()
        .map(|&clusters| {
            thread::spawn(move || {
                post(addr, "/v1/evaluate", &format!(r#"{{"clusters":{clusters}}}"#))
            })
        })
        .collect();
    let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (response, clusters) in responses.iter().zip(cluster_counts) {
        assert_eq!(status_of(response), 200, "{response}");
        let config = hmcs_core::SystemConfig::new(
            clusters,
            256 / clusters,
            1024,
            hmcs_core::scenario::PAPER_LAMBDA_PER_US,
            Scenario::Case1,
            Architecture::NonBlocking,
        )
        .unwrap();
        let direct = AnalyticalModel::evaluate(&config).unwrap();
        let served = parse_json(body_of(response))
            .unwrap()
            .get("latency_us")
            .and_then(|l| l.get("mean"))
            .and_then(|m| m.as_num())
            .unwrap();
        assert_eq!(
            served.to_bits(),
            direct.latency.mean_message_latency_us.to_bits(),
            "batched evaluation must stay bit-identical (C={clusters})"
        );
    }

    let batches = metrics::counter(keys::BATCH_BATCHES).get() - batches_before;
    let items = metrics::counter(keys::BATCH_BATCHED_ITEMS).get() - items_before;
    assert_eq!(items as usize, cluster_counts.len(), "every point flows through the batcher");
    assert!(batches >= 1);
    assert!(
        (batches as usize) < cluster_counts.len(),
        "distinct points must share batches ({batches} batches for {items} items)"
    );
    server.shutdown();
}

#[test]
fn mixed_evaluate_and_sweep_requests_share_one_kernel_solve_bit_identically() {
    let _guard = serialise();

    // Reference pass: the same requests served without micro-batching.
    // Every document is a pure function of the analytical report, so
    // the batched bodies must come back *byte*-identical.
    let evaluate_bodies =
        [r#"{"clusters":4}"#, r#"{"clusters":64,"message_bytes":4096,"scenario":"case2"}"#];
    let sweep_body = r#"{"clusters":16,"parameter":"clusters","values":[2,8,32,128]}"#;

    let reference = Server::start(test_config()).unwrap();
    let ref_addr = reference.local_addr();
    let mut expected: Vec<String> = evaluate_bodies
        .iter()
        .map(|b| body_of(&post(ref_addr, "/v1/evaluate", b)).to_owned())
        .collect();
    expected.push(body_of(&post(ref_addr, "/v1/sweep", sweep_body)).to_owned());
    reference.shutdown();

    // Batched pass: two evaluate points and four sweep lanes land in
    // the same 300 ms gather window, so all six configs flow through a
    // shared `kernel::evaluate_batch` solve.
    let server = Server::start(ServerConfig {
        workers: 8,
        batch_window: Duration::from_millis(300),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let batches_before = metrics::counter(keys::BATCH_BATCHES).get();
    let items_before = metrics::counter(keys::BATCH_BATCHED_ITEMS).get();

    let handles: Vec<_> = evaluate_bodies
        .iter()
        .map(|&body| thread::spawn(move || post(addr, "/v1/evaluate", body)))
        .chain(std::iter::once(thread::spawn(move || post(addr, "/v1/sweep", sweep_body))))
        .collect();
    let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (response, expected_body) in responses.iter().zip(&expected) {
        assert_eq!(status_of(response), 200, "{response}");
        assert_eq!(
            body_of(response),
            expected_body,
            "micro-batched responses must be byte-identical to unbatched ones"
        );
    }

    let batches = metrics::counter(keys::BATCH_BATCHES).get() - batches_before;
    let items = metrics::counter(keys::BATCH_BATCHED_ITEMS).get() - items_before;
    assert_eq!(items, 6, "both evaluate points and all four sweep lanes flow through the batcher");
    assert!(batches >= 1);
    assert!(
        batches < 3,
        "evaluate and sweep windows must share kernel solves ({batches} batches for {items} items)"
    );
    server.shutdown();
}

#[test]
fn strict_saturated_workloads_get_structured_422s_and_lenient_ones_succeed() {
    let _guard = serialise();
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    // The paper's default λ is far above open-queue saturation for
    // this shape. Without the flag the finite-population model
    // self-throttles and the request succeeds (regression: the flag
    // must stay opt-in).
    let lenient = post(addr, "/v1/evaluate", r#"{"clusters":16}"#);
    assert_eq!(status_of(&lenient), 200, "{lenient}");

    // With the flag, the same workload is refused with the computed
    // boundary in the body — bit-identical to the in-process solver.
    let strict = post(addr, "/v1/evaluate", r#"{"clusters":16,"require_unsaturated":true}"#);
    assert_eq!(status_of(&strict), 422, "{strict}");
    let doc = parse_json(body_of(&strict)).expect("error body is valid JSON");
    let error = doc.get("error").expect("error object");
    assert_eq!(error.get("code").and_then(|c| c.as_str()), Some("workload_saturated"));
    let served_sat =
        error.get("saturation_lambda").and_then(|v| v.as_num()).expect("saturation_lambda field");
    let config = hmcs_core::SystemConfig::new(
        16,
        16,
        1024,
        hmcs_core::scenario::PAPER_LAMBDA_PER_US,
        Scenario::Case1,
        Architecture::NonBlocking,
    )
    .unwrap();
    let service = hmcs_core::service::ServiceTimes::compute(&config).unwrap();
    let direct_sat = hmcs_core::solver::saturation_lambda(&config, &service);
    assert_eq!(
        served_sat.to_bits(),
        direct_sat.to_bits(),
        "served saturation boundary must match the solver bit for bit"
    );
    assert_eq!(
        error.get("lambda_per_us").and_then(|v| v.as_num()),
        Some(hmcs_core::scenario::PAPER_LAMBDA_PER_US)
    );

    // A strict request under the boundary still succeeds.
    let under = post(
        addr,
        "/v1/evaluate",
        &format!(
            r#"{{"clusters":16,"lambda_per_us":{},"require_unsaturated":true}}"#,
            direct_sat * 0.5
        ),
    );
    assert_eq!(status_of(&under), 200, "{under}");

    // Strict sweeps refuse saturated points and name the x-value.
    let sweep = post(
        addr,
        "/v1/sweep",
        &format!(
            r#"{{"clusters":16,"parameter":"lambda","values":[{},{}],"require_unsaturated":true}}"#,
            direct_sat * 0.5,
            direct_sat * 2.0
        ),
    );
    assert_eq!(status_of(&sweep), 422, "{sweep}");
    let doc = parse_json(body_of(&sweep)).unwrap();
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()),
        Some("workload_saturated")
    );
    // The same sweep without the flag still serves every point.
    let lenient_sweep = post(
        addr,
        "/v1/sweep",
        &format!(
            r#"{{"clusters":16,"parameter":"lambda","values":[{},{}]}}"#,
            direct_sat * 0.5,
            direct_sat * 2.0
        ),
    );
    assert_eq!(status_of(&lenient_sweep), 200, "{lenient_sweep}");
    server.shutdown();
}

#[test]
fn served_optimize_is_bit_identical_to_in_process_optimization() {
    let _guard = serialise();
    // The full preset space (1120 designs) runs sequentially inside
    // one request; give it a roomy deadline for slow CI hosts.
    let server =
        Server::start(ServerConfig { deadline: Duration::from_secs(60), ..test_config() }).unwrap();
    let addr = server.local_addr();
    let optimize_before = metrics::counter(keys::REQ_OPTIMIZE).get();

    let body = r#"{"slo_ms":30,"budget_usd":60000}"#;
    let response = post(addr, "/v1/optimize", body);
    assert_eq!(status_of(&response), 200, "{response}");
    let doc = parse_json(body_of(&response)).expect("valid JSON body");
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("hmcs-serve-optimize/1"));
    assert!(metrics::counter(keys::REQ_OPTIMIZE).get() > optimize_before);

    // In-process reference: the same body through the same parser and
    // the library optimizer.
    let spec = hmcs_serve::api::parse_optimize(body).unwrap().spec;
    let direct =
        hmcs_core::optimize::optimize(&spec, hmcs_core::batch::BatchOptions::sequential()).unwrap();

    assert_eq!(doc.get("space_size").and_then(|v| v.as_u64()), Some(direct.space_size as u64));
    assert_eq!(doc.get("evaluated").and_then(|v| v.as_u64()), Some(direct.evaluated as u64));
    assert_eq!(doc.get("feasible").and_then(|v| v.as_u64()), Some(direct.feasible as u64));
    let served_frontier = doc.get("frontier").and_then(|f| f.as_arr()).expect("frontier array");
    assert_eq!(served_frontier.len(), direct.frontier.len());
    for (served, direct_point) in served_frontier.iter().zip(&direct.frontier) {
        assert_eq!(
            served.get("design").and_then(|d| d.as_str()),
            Some(direct_point.design.key().as_str()),
            "frontier order and identity must match"
        );
        for (field, expected) in [
            ("cost_usd", direct_point.cost_usd),
            ("latency_us", direct_point.latency_us),
            ("throughput_per_us", direct_point.throughput_per_us),
            ("retained_fraction", direct_point.retained_fraction),
            ("bottleneck_utilization", direct_point.bottleneck_utilization),
            ("saturation_lambda", direct_point.saturation_lambda),
        ] {
            let served_value = served
                .get(field)
                .and_then(|v| v.as_num())
                .unwrap_or_else(|| panic!("{field} missing"));
            assert_eq!(
                served_value.to_bits(),
                expected.to_bits(),
                "served {field} must round-trip bit-identically"
            );
        }
    }
    let cheapest = doc.get("cheapest_feasible").expect("cheapest_feasible present");
    match direct.cheapest_feasible() {
        Some(point) => assert_eq!(
            cheapest.get("design").and_then(|d| d.as_str()),
            Some(point.design.key().as_str())
        ),
        None => assert!(matches!(cheapest, hmcs_core::json::JsonValue::Null)),
    }

    // Bad specs are 400s, not 500s or hangs.
    let bad = post(addr, "/v1/optimize", r#"{"slo_ms":0}"#);
    assert_eq!(status_of(&bad), 400, "{bad}");
    server.shutdown();
}

#[test]
fn loadgen_closed_loop_round_trips_against_a_live_server() {
    let _guard = serialise();
    let server = Server::start(test_config()).unwrap();
    let summary = hmcs_serve::loadgen::run(&hmcs_serve::loadgen::LoadgenConfig {
        addr: server.local_addr().to_string(),
        mode: hmcs_serve::loadgen::Mode::Closed { pipeline: 4 },
        connections: 1,
        duration: Duration::from_millis(400),
        warmup: Duration::from_millis(100),
        mix: hmcs_serve::loadgen::MixConfig {
            sweep_permille: 200,
            clusters: 16,
            message_bytes: vec![256, 1024],
        },
    })
    .expect("loadgen run");
    assert!(summary.measured_requests > 0, "a live server must produce samples");
    assert_eq!(summary.errors, 0, "every response must be a 200: {summary:?}");
    assert!(summary.achieved_rps > 0.0);
    assert!(summary.latency.p50 > 0 && summary.latency.p50 <= summary.latency.p999);
    parse_json(&summary.to_json()).expect("summary document is valid JSON");
    server.shutdown();
}
