//! Integration tests across the two simulators and the analysis: the
//! "set of simulators" must agree with each other on trends, and the
//! packet-level simulator must reproduce the topology-level effects the
//! flow-level abstraction only models.

use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_sim::packet::PacketSimulator;
use hmcs_topology::transmission::Architecture;

fn sim_cfg(sys: SystemConfig, messages: u64, seed: u64) -> SimConfig {
    SimConfig::new(sys).with_messages(messages).with_warmup(messages / 4).with_seed(seed)
}

/// Both simulators and the analysis agree that blocking networks are
/// slower, for both scenarios — at a cluster count (C = 64) where the
/// linear arrays physically have multiple switches.
#[test]
fn all_three_referees_agree_blocking_is_slower() {
    for scenario in [Scenario::Case1, Scenario::Case2] {
        let nb_sys = SystemConfig::paper_preset(scenario, 64, Architecture::NonBlocking).unwrap();
        let bl_sys = SystemConfig::paper_preset(scenario, 64, Architecture::Blocking).unwrap();
        let nb_analysis =
            AnalyticalModel::evaluate(&nb_sys).unwrap().latency.mean_message_latency_us;
        let bl_analysis =
            AnalyticalModel::evaluate(&bl_sys).unwrap().latency.mean_message_latency_us;
        let nb_flow = FlowSimulator::run(&sim_cfg(nb_sys, 3_000, 1)).unwrap().mean_latency_us;
        let bl_flow = FlowSimulator::run(&sim_cfg(bl_sys, 3_000, 1)).unwrap().mean_latency_us;
        let nb_packet = PacketSimulator::run(&sim_cfg(nb_sys, 2_000, 1)).unwrap().mean_latency_us;
        let bl_packet = PacketSimulator::run(&sim_cfg(bl_sys, 2_000, 1)).unwrap().mean_latency_us;
        assert!(bl_analysis > nb_analysis, "{scenario:?} analysis");
        assert!(bl_flow > nb_flow, "{scenario:?} flow sim");
        assert!(bl_packet > nb_packet, "{scenario:?} packet sim");
    }
}

/// A fidelity finding the packet simulator exposes: at C = 16 on the
/// paper platform every tier is ONE physical switch in both
/// architectures, so the physical systems are identical — yet the
/// paper's blocking model still charges the `(N/2)·M·β` penalty
/// (eq. 20 applies for any k, including k = 1). The packet simulator
/// reports *equal* latencies; the analytical gap at this point is a
/// model artifact, not physics.
#[test]
fn single_switch_regime_has_no_physical_blocking_penalty() {
    let nb_sys =
        SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let bl_sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::Blocking).unwrap();
    let nb = PacketSimulator::run(&sim_cfg(nb_sys, 2_000, 1)).unwrap().mean_latency_us;
    let bl = PacketSimulator::run(&sim_cfg(bl_sys, 2_000, 1)).unwrap().mean_latency_us;
    let rel = (nb - bl).abs() / nb;
    assert!(rel < 0.05, "physically identical systems: nb {nb} vs bl {bl}");
    // The analysis, faithful to the paper, still predicts a large gap.
    let nb_a = AnalyticalModel::evaluate(&nb_sys).unwrap().latency.mean_message_latency_us;
    let bl_a = AnalyticalModel::evaluate(&bl_sys).unwrap().latency.mean_message_latency_us;
    assert!(bl_a > 2.0 * nb_a, "the paper's model charges the penalty regardless");
}

/// The packet simulator reproduces the message-size effect.
#[test]
fn packet_simulator_shows_message_size_effect() {
    let base = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let small = PacketSimulator::run(&sim_cfg(base.with_message_bytes(512), 2_000, 3))
        .unwrap()
        .mean_latency_us;
    let large = PacketSimulator::run(&sim_cfg(base.with_message_bytes(1024), 2_000, 3))
        .unwrap()
        .mean_latency_us;
    assert!(large > small);
}

/// Packet-level latencies sit above the flow-level ones (store-and-
/// forward pays the payload per hop) but within a small factor at this
/// load — the documented systematic offset.
#[test]
fn packet_vs_flow_offset_is_bounded() {
    let sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let flow = FlowSimulator::run(&sim_cfg(sys, 3_000, 5)).unwrap().mean_latency_us;
    let packet = PacketSimulator::run(&sim_cfg(sys, 3_000, 5)).unwrap().mean_latency_us;
    let ratio = packet / flow;
    assert!(
        (0.2..5.0).contains(&ratio),
        "packet/flow ratio {ratio} out of plausible band (flow {flow}, packet {packet})"
    );
}

/// The packet simulator is seed-reproducible and seed-sensitive, like
/// the flow simulator.
#[test]
fn packet_simulator_reproducibility() {
    let sys = SystemConfig::paper_preset(Scenario::Case2, 4, Architecture::Blocking).unwrap();
    let a = PacketSimulator::run(&sim_cfg(sys, 1_000, 9)).unwrap();
    let b = PacketSimulator::run(&sim_cfg(sys, 1_000, 9)).unwrap();
    let c = PacketSimulator::run(&sim_cfg(sys, 1_000, 10)).unwrap();
    assert_eq!(a, b);
    assert_ne!(a.mean_latency_us, c.mean_latency_us);
}

/// Internal messages never touch ECN1/ICN2 in either simulator: a
/// single-cluster system reports zero external traffic and zero ICN2
/// arrivals.
#[test]
fn single_cluster_isolation_in_both_simulators() {
    let sys = SystemConfig::paper_preset(Scenario::Case1, 1, Architecture::NonBlocking).unwrap();
    let flow = FlowSimulator::run(&sim_cfg(sys, 1_500, 2)).unwrap();
    let packet = PacketSimulator::run(&sim_cfg(sys, 1_500, 2)).unwrap();
    assert_eq!(flow.external_latency.count(), 0);
    assert_eq!(packet.external_latency.count(), 0);
    assert_eq!(flow.icn2.arrivals, 0);
    assert_eq!(packet.icn2.arrivals, 0);
}

/// Open-system mode (assumption 4 disabled) raises latency relative to
/// the blocked-sources mode at the same nominal rate, because nothing
/// throttles the offered load.
#[test]
fn open_system_is_slower_than_self_throttled_system() {
    // Use a load where the closed system throttles visibly but the open
    // system is still stable.
    let sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking)
        .unwrap()
        .with_lambda(1.2e-5);
    let closed = FlowSimulator::run(&sim_cfg(sys, 4_000, 7)).unwrap();
    let open = FlowSimulator::run(&sim_cfg(sys, 4_000, 7).with_blocked_sources(false)).unwrap();
    assert!(
        open.mean_latency_us > closed.mean_latency_us,
        "open {} vs closed {}",
        open.mean_latency_us,
        closed.mean_latency_us
    );
}
