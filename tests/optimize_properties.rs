//! Property tests for the capacity-planning optimizer: for any
//! workload, constraint set and (small) design space, the reported
//! Pareto frontier must be exactly the set of non-dominated feasible
//! designs, bit-identical to direct `AnalyticalModel` evaluation, with
//! self-consistent binding-constraint diagnostics.

use hmcs_core::batch::BatchOptions;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::optimize::{
    self, CatalogCostModel, Constraints, CostModel, Design, DesignSpace, OptimizeSpec, Workload,
};
use hmcs_core::scenario::Scenario;
use hmcs_core::service::ServiceTimes;
use hmcs_core::solver;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::Architecture;
use proptest::prelude::*;

fn any_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![Just(Scenario::Case1), Just(Scenario::Case2)]
}

fn maybe(range: std::ops::Range<f64>) -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), range.prop_map(Some)]
}

fn any_tech_pair() -> impl Strategy<Value = (usize, usize)> {
    // Indices into the preset catalogue; intra and inter pick
    // different (possibly equal) entries.
    (0usize..NetworkTechnology::PRESETS.len(), 0usize..NetworkTechnology::PRESETS.len())
}

/// A small spec: ≤ 3 cluster splits × 2 technologies per axis ×
/// 2 port counts × 2 architectures keeps the brute-force oracle cheap.
fn any_spec() -> impl Strategy<Value = OptimizeSpec> {
    (
        (prop_oneof![Just(8usize), Just(16), Just(32)], any_scenario(), 1u64..8192, -7.0f64..-3.5),
        (any_tech_pair(), maybe(0.5f64..500.0), maybe(3.0f64..6.0), any::<bool>()),
    )
        .prop_map(
            |(
                (total_nodes, scenario, bytes, lambda_exp),
                ((ti, tj), slo_ms, budget_exp, strict),
            )| {
                let workload = Workload {
                    scenario,
                    total_nodes,
                    message_bytes: bytes,
                    lambda_per_us: 10f64.powf(lambda_exp),
                };
                let presets = NetworkTechnology::PRESETS;
                let space = DesignSpace {
                    cluster_counts: DesignSpace::paper_default(total_nodes).cluster_counts,
                    intra: vec![presets[ti], presets[tj]],
                    inter: vec![presets[tj]],
                    switch_ports: vec![8, 16],
                    architectures: vec![Architecture::NonBlocking, Architecture::Blocking],
                };
                OptimizeSpec {
                    workload,
                    constraints: Constraints {
                        slo_latency_us: slo_ms.map(|v| v * 1e3),
                        budget_usd: budget_exp.map(|e| 10f64.powf(e)),
                        require_unsaturated: strict,
                    },
                    space,
                }
            },
        )
}

/// Brute-force oracle: every feasible (design, cost, latency) triple
/// in the space, via direct single-point evaluation.
fn feasible_by_brute_force(spec: &OptimizeSpec) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for &clusters in &spec.space.cluster_counts {
        for &intra in &spec.space.intra {
            for &inter in &spec.space.inter {
                for &ports in &spec.space.switch_ports {
                    for &arch in &spec.space.architectures {
                        let Ok(design) =
                            Design::build(&spec.workload, clusters, intra, inter, ports, arch)
                        else {
                            continue;
                        };
                        let cost = CatalogCostModel.cost_usd(&design).expect("preset catalogue");
                        if spec.constraints.budget_usd.is_some_and(|b| cost > b) {
                            continue;
                        }
                        let Ok(service) = ServiceTimes::compute(&design.config) else {
                            continue;
                        };
                        if spec.constraints.require_unsaturated
                            && spec.workload.lambda_per_us
                                >= solver::saturation_lambda(&design.config, &service)
                        {
                            continue;
                        }
                        let Ok(report) = AnalyticalModel::evaluate(&design.config) else {
                            continue;
                        };
                        let latency = report.latency.mean_message_latency_us;
                        if !spec.constraints.slo_latency_us.is_none_or(|slo| latency <= slo) {
                            continue;
                        }
                        out.push((design.key(), cost, latency));
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The frontier is a strict staircase of non-dominated feasible
    /// designs, every feasible design is dominated-or-equalled by some
    /// frontier point, and the diagnostics counters balance.
    #[test]
    fn frontier_is_exactly_the_non_dominated_feasible_set(spec in any_spec()) {
        let outcome = optimize::optimize(&spec, BatchOptions::sequential()).unwrap();

        // Accounting identities.
        prop_assert_eq!(outcome.feasible, outcome.frontier.len() + outcome.diagnostics.dominated);
        prop_assert_eq!(
            outcome.evaluated,
            outcome.feasible + outcome.diagnostics.above_slo
        );
        prop_assert!(outcome.evaluated <= outcome.space_size);

        // Strict staircase: cost strictly rises, latency strictly falls.
        for pair in outcome.frontier.windows(2) {
            prop_assert!(pair[0].cost_usd < pair[1].cost_usd);
            prop_assert!(pair[0].latency_us > pair[1].latency_us);
        }

        // Oracle comparison: the frontier is feasible, non-dominated,
        // and covers (dominates-or-equals) every feasible design.
        let feasible = feasible_by_brute_force(&spec);
        prop_assert_eq!(outcome.feasible, feasible.len());
        for point in &outcome.frontier {
            let key = point.design.key();
            prop_assert!(
                feasible.iter().any(|(k, c, l)| *k == key
                    && c.to_bits() == point.cost_usd.to_bits()
                    && l.to_bits() == point.latency_us.to_bits()),
                "frontier point {} must appear in the brute-force feasible set", key
            );
            prop_assert!(
                !feasible.iter().any(|(k, c, l)| *k != key
                    && *c <= point.cost_usd
                    && *l <= point.latency_us
                    && (*c < point.cost_usd || *l < point.latency_us)),
                "frontier point {} must not be dominated", key
            );
        }
        for (key, cost, latency) in &feasible {
            prop_assert!(
                outcome.frontier.iter().any(|p| p.cost_usd <= *cost && p.latency_us <= *latency),
                "feasible design {} must be dominated-or-equalled by the frontier", key
            );
        }

        // The cheapest feasible design is the frontier's first point.
        if let Some(cheapest) = outcome.cheapest_feasible() {
            for (_, cost, _) in &feasible {
                prop_assert!(cheapest.cost_usd <= *cost);
            }
        } else {
            prop_assert!(feasible.is_empty());
        }
    }

    /// Every frontier metric is bit-identical to evaluating the same
    /// config directly — the optimizer adds selection, never drift.
    #[test]
    fn frontier_points_are_bit_identical_to_direct_evaluation(spec in any_spec()) {
        let outcome = optimize::optimize(&spec, BatchOptions::sequential()).unwrap();
        for point in &outcome.frontier {
            let report = AnalyticalModel::evaluate(&point.design.config).unwrap();
            prop_assert_eq!(
                point.latency_us.to_bits(),
                report.latency.mean_message_latency_us.to_bits()
            );
            prop_assert_eq!(
                point.throughput_per_us.to_bits(),
                report.throughput_per_us.to_bits()
            );
            prop_assert_eq!(
                point.retained_fraction.to_bits(),
                report.equilibrium.retained_fraction.to_bits()
            );
            prop_assert_eq!(
                point.bottleneck_utilization.to_bits(),
                report.equilibrium.bottleneck_utilization().to_bits()
            );
            let service = ServiceTimes::compute(&point.design.config).unwrap();
            prop_assert_eq!(
                point.saturation_lambda.to_bits(),
                solver::saturation_lambda(&point.design.config, &service).to_bits()
            );
            prop_assert_eq!(
                point.cost_usd.to_bits(),
                CatalogCostModel.cost_usd(&point.design).unwrap().to_bits()
            );
        }
    }

    /// The gradient-pruned optimizer returns a frontier bitwise equal
    /// to the exhaustive one on seeded random spaces (densified along
    /// the port axis so pruning actually engages), and attributes
    /// every certificate-skipped point to `diagnostics.pruned`.
    #[test]
    fn pruned_optimize_matches_exhaustive_bitwise(spec in any_spec()) {
        let mut spec = spec;
        spec.space.switch_ports = (4..=32).step_by(4).collect();
        let exhaustive = optimize::optimize(&spec, BatchOptions::sequential()).unwrap();
        let pruned = optimize::optimize_pruned(&spec, BatchOptions::sequential()).unwrap();

        prop_assert_eq!(exhaustive.frontier.len(), pruned.frontier.len());
        for (a, b) in exhaustive.frontier.iter().zip(&pruned.frontier) {
            prop_assert_eq!(a.design.key(), b.design.key());
            prop_assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
            prop_assert_eq!(a.latency_us.to_bits(), b.latency_us.to_bits());
            prop_assert_eq!(a.throughput_per_us.to_bits(), b.throughput_per_us.to_bits());
            prop_assert_eq!(a.retained_fraction.to_bits(), b.retained_fraction.to_bits());
            prop_assert_eq!(
                a.bottleneck_utilization.to_bits(),
                b.bottleneck_utilization.to_bits()
            );
            prop_assert_eq!(a.saturation_lambda.to_bits(), b.saturation_lambda.to_bits());
        }

        // Pruning only ever removes work, never adds results.
        prop_assert_eq!(exhaustive.diagnostics.pruned, 0);
        prop_assert!(pruned.evaluated <= exhaustive.evaluated);
        prop_assert!(pruned.feasible <= exhaustive.feasible);
        prop_assert_eq!(
            pruned.feasible,
            pruned.frontier.len() + pruned.diagnostics.dominated
        );
        prop_assert_eq!(
            pruned.evaluated + pruned.diagnostics.failed + pruned.diagnostics.pruned,
            exhaustive.evaluated + exhaustive.diagnostics.failed
        );
        match (exhaustive.cheapest_feasible(), pruned.cheapest_feasible()) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
                prop_assert_eq!(a.latency_us.to_bits(), b.latency_us.to_bits());
            }
            (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
        }
    }

    /// Parallel and sequential optimization agree bitwise, so the
    /// served (sequential) frontier equals the artefact (parallel) one.
    #[test]
    fn parallel_optimize_matches_sequential_bitwise(spec in any_spec()) {
        let sequential = optimize::optimize(&spec, BatchOptions::sequential()).unwrap();
        let parallel = optimize::optimize(&spec, BatchOptions::with_workers(4)).unwrap();
        prop_assert_eq!(sequential.frontier.len(), parallel.frontier.len());
        for (a, b) in sequential.frontier.iter().zip(&parallel.frontier) {
            prop_assert_eq!(a.design.key(), b.design.key());
            prop_assert_eq!(a.latency_us.to_bits(), b.latency_us.to_bits());
            prop_assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
        }
    }
}
