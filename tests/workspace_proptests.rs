//! Workspace-level property tests: invariants that must hold for any
//! valid system configuration, spanning the model, the solver and the
//! simulators.

use hmcs_core::config::{QueueAccounting, SystemConfig};
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_topology::transmission::Architecture;
use proptest::prelude::*;

fn any_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![Just(Scenario::Case1), Just(Scenario::Case2)]
}

fn any_architecture() -> impl Strategy<Value = Architecture> {
    prop_oneof![Just(Architecture::NonBlocking), Just(Architecture::Blocking)]
}

fn any_shape() -> impl Strategy<Value = (usize, usize)> {
    // clusters, nodes per cluster; total <= 512 to keep runs fast.
    (1usize..24, 1usize..24).prop_filter("at least two nodes", |(c, n)| c * n >= 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The model always produces positive, finite latency and a
    /// fixed point inside (0, lambda].
    #[test]
    fn model_invariants(
        (clusters, n0) in any_shape(),
        scenario in any_scenario(),
        arch in any_architecture(),
        bytes in 1u64..16_384,
        lambda_exp in -7.0f64..-2.5,
    ) {
        let lambda = 10f64.powf(lambda_exp);
        let cfg = SystemConfig::new(clusters, n0, bytes, lambda, scenario, arch).unwrap();
        let report = AnalyticalModel::evaluate(&cfg).unwrap();
        prop_assert!(report.latency.mean_message_latency_us.is_finite());
        prop_assert!(report.latency.mean_message_latency_us > 0.0);
        let eq = report.equilibrium;
        prop_assert!(eq.lambda_eff > 0.0 && eq.lambda_eff <= lambda * (1.0 + 1e-9));
        prop_assert!(eq.bottleneck_utilization() < 1.0);
        prop_assert!(eq.total_waiting >= 0.0);
        prop_assert!(eq.total_waiting <= cfg.total_nodes() as f64 + 1e-9);
        // Eq. 7 holds at the returned point.
        let n = cfg.total_nodes() as f64;
        let rhs = lambda * (n - eq.total_waiting) / n;
        prop_assert!((eq.lambda_eff - rhs).abs() < 1e-5 * lambda);
    }

    /// Latency is monotone non-decreasing in message size.
    #[test]
    fn latency_monotone_in_message_size(
        (clusters, n0) in any_shape(),
        scenario in any_scenario(),
        arch in any_architecture(),
        bytes in 16u64..4_096,
        grow in 2u64..8,
    ) {
        let mk = |m: u64| {
            let cfg = SystemConfig::new(clusters, n0, m, 1e-5, scenario, arch).unwrap();
            AnalyticalModel::evaluate(&cfg).unwrap().latency.mean_message_latency_us
        };
        prop_assert!(mk(bytes * grow) >= mk(bytes));
    }

    /// The single-queue accounting never predicts lower total waiting
    /// than zero nor more than the literal double-count.
    #[test]
    fn accounting_ordering(
        (clusters, n0) in any_shape(),
        arch in any_architecture(),
    ) {
        let base =
            SystemConfig::new(clusters, n0, 1024, 2.5e-4, Scenario::Case1, arch).unwrap();
        let single = AnalyticalModel::evaluate(
            &base.with_accounting(QueueAccounting::SingleQueue),
        )
        .unwrap()
        .equilibrium;
        let literal = AnalyticalModel::evaluate(
            &base.with_accounting(QueueAccounting::PaperLiteral),
        )
        .unwrap()
        .equilibrium;
        prop_assert!(literal.lambda_eff <= single.lambda_eff + 1e-15);
    }

    /// Short flow-simulation runs complete and produce sane statistics
    /// for arbitrary valid configurations.
    #[test]
    fn simulation_smoke(
        (clusters, n0) in (1usize..10, 2usize..10),
        scenario in any_scenario(),
        arch in any_architecture(),
        seed in 0u64..1_000,
    ) {
        let sys = SystemConfig::new(clusters, n0, 512, 1e-4, scenario, arch).unwrap();
        let cfg = SimConfig::new(sys).with_messages(300).with_seed(seed);
        let r = FlowSimulator::run(&cfg).unwrap();
        prop_assert_eq!(r.messages, 300);
        prop_assert!(r.mean_latency_us > 0.0);
        prop_assert!(r.latency.min().unwrap() >= 0.0);
        prop_assert!(r.latency.max().unwrap() >= r.mean_latency_us);
        prop_assert!(r.external_fraction() >= 0.0 && r.external_fraction() <= 1.0);
        if clusters == 1 {
            prop_assert_eq!(r.external_latency.count(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Allen–Cunneen GI/G/1 estimate coincides with Pollaczek–
    /// Khinchine for Poisson arrivals, for any service SCV.
    #[test]
    fn gg1_reduces_to_mg1_for_poisson_arrivals(
        lambda in 0.05f64..0.9,
        scv in 0.0f64..4.0,
    ) {
        use hmcs_queueing::gg1::{Approximation, GG1};
        use hmcs_queueing::mg1::{ServiceDistribution, MG1};
        let svc = ServiceDistribution::General { mean: 1.0, scv };
        let gg1 = GG1::new(lambda, 1.0, svc).unwrap();
        let pk = MG1::new(lambda, svc).unwrap();
        let diff = (gg1.mean_waiting_time(Approximation::AllenCunneen)
            - pk.mean_waiting_time())
        .abs();
        prop_assert!(diff < 1e-9);
    }

    /// Priority scheduling preserves the Kleinrock conservation law for
    /// random class mixes.
    #[test]
    fn priority_conservation_holds(
        rates in prop::collection::vec(0.01f64..0.2, 1..5),
        means in prop::collection::vec(0.2f64..2.0, 1..5),
    ) {
        use hmcs_queueing::mg1::ServiceDistribution;
        use hmcs_queueing::priority::{PriorityClass, PriorityMG1};
        let k = rates.len().min(means.len());
        let classes: Vec<PriorityClass> = (0..k)
            .map(|i| PriorityClass {
                lambda: rates[i],
                service: ServiceDistribution::Exponential(means[i]),
            })
            .collect();
        let total_rho: f64 = classes.iter().map(|c| c.lambda * c.service.mean()).sum();
        prop_assume!(total_rho < 0.95);
        let q = PriorityMG1::new(classes).unwrap();
        prop_assert!(q.conservation_residual() < 1e-8);
    }

    /// k-ary n-cube hop counts agree with BFS on the explicit graph for
    /// random nodes.
    #[test]
    fn kary_ncube_hops_match_graph(
        k in 2u32..6,
        n in 1u32..4,
        seed in 0usize..10_000,
    ) {
        use hmcs_topology::kary_ncube::KaryNCube;
        let cube = KaryNCube::new(k, n).unwrap();
        let nodes = cube.nodes();
        let src = seed % nodes;
        let g = cube.build_graph();
        let dist = g.bfs_distances(src);
        for (v, d) in dist.iter().enumerate() {
            prop_assert_eq!(d.unwrap() as u32, cube.hop_count(src, v).unwrap());
        }
    }

    /// The generalised blocking penalty interpolates monotonically and
    /// hits the paper's endpoints.
    #[test]
    fn generalized_penalty_endpoints(
        n_half in 2usize..200,
        bytes in 1u64..8192,
    ) {
        use hmcs_topology::direct::generalized_blocking_penalty_us;
        use hmcs_topology::technology::NetworkTechnology;
        let n = 2 * n_half;
        let tech = NetworkTechnology::GIGABIT_ETHERNET;
        let payload = bytes as f64 * tech.byte_time_us();
        // b = 1: eq. 20 exactly.
        let p1 = generalized_blocking_penalty_us(n, 1, bytes, tech);
        prop_assert!((p1 - (n as f64 / 2.0 - 1.0) * payload).abs() < 1e-9);
        // b = N/2: zero.
        prop_assert_eq!(generalized_blocking_penalty_us(n, n / 2, bytes, tech), 0.0);
        // Monotone in b.
        let mut prev = f64::INFINITY;
        for b in 1..=n / 2 {
            let p = generalized_blocking_penalty_us(n, b, bytes, tech);
            prop_assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    /// The P² estimator stays within the observed range and is
    /// order-consistent across levels.
    #[test]
    fn p2_quantiles_are_ordered(seed in 0u64..5_000, n in 100usize..2_000) {
        use hmcs_des::quantile::P2Quantile;
        use hmcs_des::rng::RngStream;
        let mut rng = RngStream::new(seed, 0);
        let mut q25 = P2Quantile::new(0.25);
        let mut q50 = P2Quantile::new(0.50);
        let mut q95 = P2Quantile::new(0.95);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..n {
            let x = rng.exponential_mean(5.0);
            lo = lo.min(x);
            hi = hi.max(x);
            q25.record(x);
            q50.record(x);
            q95.record(x);
        }
        let (a, b, c) = (
            q25.estimate().unwrap(),
            q50.estimate().unwrap(),
            q95.estimate().unwrap(),
        );
        prop_assert!(a <= b + 1e-9 && b <= c + 1e-9);
        prop_assert!(a >= lo - 1e-9 && c <= hi + 1e-9);
    }

    /// Operational interactive-law identity: the model's equilibrium
    /// satisfies R = N/X − Z with R = mean latency, X = N·λ_eff,
    /// Z = 1/λ... approximately, since L counts only network residency.
    #[test]
    fn interactive_law_consistency(
        clusters in 1usize..17,
        lambda_exp in -5.0f64..-3.0,
    ) {
        prop_assume!(256 % clusters == 0);
        use hmcs_queueing::operational::interactive_response_time;
        let lambda = 10f64.powf(lambda_exp);
        let cfg = SystemConfig::paper_preset(
            Scenario::Case1,
            clusters,
            Architecture::NonBlocking,
        )
        .unwrap()
        .with_lambda(lambda);
        let r = AnalyticalModel::evaluate(&cfg).unwrap();
        let n = cfg.total_nodes() as f64;
        let x = n * r.equilibrium.lambda_eff;
        let implied =
            interactive_response_time(n, x, 1.0 / lambda).expect("positive throughput");
        // The model's eq. 15 latency and the interactive-law residence
        // time agree within the model's own approximation error.
        let rel = (implied - r.latency.mean_message_latency_us).abs()
            / r.latency.mean_message_latency_us.max(1.0);
        prop_assert!(rel < 0.35, "implied {implied} vs model {}",
            r.latency.mean_message_latency_us);
    }
}
