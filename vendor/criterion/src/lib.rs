//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment for this repository has no crate-registry
//! access, so the workspace vendors the subset of criterion's API its
//! benches use: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`] / [`Throughput`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and
//! [`Bencher::iter`].
//!
//! Measurement model: each benchmark runs a short calibration pass,
//! then `sample_size` samples of a batch sized so one sample takes
//! roughly [`TARGET_SAMPLE_TIME`]. The report prints min/mean/max
//! per-iteration wall-clock time in criterion's familiar
//! `time: [a b c]` shape, so relative comparisons (e.g. sequential vs
//! parallel sweeps) read the same way as with the real harness.
//!
//! Two environment variables extend the real harness for CI use:
//! `HMCS_BENCH_SMOKE=1` switches to a quick smoke measurement (a ~12×
//! smaller per-sample budget, at most 5 samples), and
//! `HMCS_BENCH_JSON=<path>` appends one JSON line per benchmark
//! (`{"id", "min_s", "mean_s", "max_s"}`) so downstream tooling can
//! gate on the numbers without scraping the human-readable report.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample wall-clock budget used to size iteration batches.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(60);

/// Per-sample budget in smoke mode (`HMCS_BENCH_SMOKE=1`): CI wants a
/// quick went-fast/went-slow signal, not tight confidence intervals.
const SMOKE_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// Sample-count cap applied in smoke mode.
const SMOKE_SAMPLE_SIZE: usize = 5;

/// True when `HMCS_BENCH_SMOKE` is set to anything but `0`: benches
/// run with a ~12× smaller per-sample budget and at most
/// [`SMOKE_SAMPLE_SIZE`] samples.
fn smoke_mode() -> bool {
    std::env::var_os("HMCS_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Appends one machine-readable result row to the JSON-lines file named
/// by `HMCS_BENCH_JSON` (if set). Each row is a flat object:
/// `{"id": ..., "min_s": ..., "mean_s": ..., "max_s": ...}`.
fn emit_json_row(path: &str, id: &str, min: f64, mean: f64, max: f64) -> std::io::Result<()> {
    use std::io::Write;
    let mut escaped = String::with_capacity(id.len());
    for c in id.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => escaped.push(' '),
            c => escaped.push(c),
        }
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{{\"id\": \"{escaped}\", \"min_s\": {min}, \"mean_s\": {mean}, \"max_s\": {max}}}")
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size, throughput: None }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id rendered as `function/parameter`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Units of work performed per iteration, for the report's rate line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let (target_time, sample_size) = if smoke_mode() {
        (SMOKE_SAMPLE_TIME, sample_size.clamp(2, SMOKE_SAMPLE_SIZE))
    } else {
        (TARGET_SAMPLE_TIME, sample_size)
    };

    // Calibration: find an iteration batch whose one run lands near the
    // per-sample budget.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= target_time || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (target_time.as_secs_f64() / b.elapsed.as_secs_f64()).ceil() as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 16)).min(1 << 20);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let max = per_iter.last().copied().unwrap_or(0.0);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;

    println!("{id:<50} time: [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
    if let Ok(path) = std::env::var("HMCS_BENCH_JSON") {
        if let Err(e) = emit_json_row(&path, id, min, mean, max) {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        if mean > 0.0 {
            println!("{:<50} thrpt: {:.4e} {unit}", "", amount / mean);
        }
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (criterion forwards to
/// `std::hint` just like this).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u32;
        c.bench_function("smoke/add", |b| {
            ran += 1;
            b.iter(|| std::hint::black_box(1u64 + 1));
        });
        assert!(ran >= 2, "calibration plus samples should invoke the closure");
    }

    #[test]
    fn json_rows_append_and_escape() {
        let path = std::env::temp_dir().join(format!("criterion_json_{}", std::process::id()));
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        emit_json_row(path, "g/bench \"x\"", 1e-6, 2e-6, 3e-6).unwrap();
        emit_json_row(path, "g/other", 4e-6, 5e-6, 6e-6).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"id\": \"g/bench \\\"x\\\"\", \"min_s\": 0.000001, \"mean_s\": 0.000002, \"max_s\": 0.000003}");
        assert!(lines[1].contains("\"id\": \"g/other\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.finish();
    }
}
