//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from `len` and elements
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range for collection::vec");
    VecStrategy { element, len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.uniform_usize(span);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::for_test("vec_lengths");
        let s = vec(0.0f64..1.0, 2..6);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
