//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment for this repository has no crate-registry
//! access, so the workspace vendors the subset of proptest it uses:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { ... }`,
//!   optional `#![proptest_config(...)]`);
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`, `prop_oneof!`;
//! * range strategies over the primitive numeric types, tuple
//!   strategies, [`strategy::Just`], `prop_map`, `prop_filter`,
//!   [`collection::vec`], and `any::<bool>()`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name), and failing cases are reported but **not shrunk**. For the
//! invariant-style properties in this workspace that trade-off is fine —
//! failures still print the generated inputs via the assertion message.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace alias mirroring `proptest::prelude::prop::*` paths
/// (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Generates the canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Strategy type produced by [`Arbitrary::arbitrary`].
    type Strategy: strategy::Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The glob-import surface used by the tests.
pub mod prelude {
    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(64).max(1_024);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name),
                        accepted,
                        config.cases,
                    );
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest {} failed on case {}: {}",
                            stringify!($name),
                            accepted,
                            msg,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{} (left: {:?}, right: {:?})",
                    format!($($fmt)+),
                    l,
                    r
                )),
            );
        }
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses uniformly between the given same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
