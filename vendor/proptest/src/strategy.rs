//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// How many times combinators retry before declaring a filter
/// unsatisfiable.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// A source of random values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, mirroring the
/// parts of proptest's `Strategy` this workspace uses.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing the predicate, retrying.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union; panics on an empty list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.uniform_usize(self.0.len());
        self.0[idx].generate(rng)
    }
}

/// `any::<bool>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let u = rng.uniform_f64();
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        let u = rng.uniform_f64() as f32;
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Phantom-carrying helper so tuples of strategies are strategies of
/// tuples.
pub struct TupleStrategy<T>(PhantomData<T>);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1_000 {
            let x = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&x));
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut rng = TestRng::for_test("map_filter_union_compose");
        let s = (1usize..10).prop_map(|v| v * 2).prop_filter("multiple of 4", |v| v % 4 == 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 4 == 0 && (2..20).contains(&v));
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::for_test("tuples_generate_elementwise");
        let (a, b) = (1usize..4, 10u64..20).generate(&mut rng);
        assert!((1..4).contains(&a) && (10..20).contains(&b));
    }
}
