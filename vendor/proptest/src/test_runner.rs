//! Deterministic case generation and the per-case error protocol.

/// Per-`proptest!` configuration (subset: number of cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` / a filter; it is not a
    /// failure and another case is drawn instead.
    Reject(String),
    /// The property's assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Deterministic RNG used for generating cases (xoshiro256++ seeded
/// from the test's fully-qualified name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG deterministically seeded from a test identifier.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// Next 64 random bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; panics when `n == 0`.
    #[inline]
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize needs a positive bound");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        let mut c = TestRng::for_test("x::z");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn config_defaults_to_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(40).cases, 40);
    }
}
