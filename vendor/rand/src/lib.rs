//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors the minimal surface it actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, and [`Rng::gen_range`]
//! over integer ranges.
//!
//! `SmallRng` is implemented as xoshiro256++ (the same algorithm the
//! real `rand 0.8` uses on 64-bit targets), seeded through SplitMix64
//! exactly like `rand_core`'s `seed_from_u64`. Streams are therefore
//! deterministic, of high statistical quality, and fast — but the
//! concrete values are **not** guaranteed to bit-match crates.io
//! `rand`; nothing in this workspace depends on that.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core RNG interface: a source of 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw bits (the `Standard` distribution
/// of real `rand`, flattened into one trait).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait RangeSample: Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Unbiased rejection sampling (Lemire's method would be
                // faster; simplicity wins here).
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return lo + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_range_sample!(usize, u64, u32, u16, u8);

/// Convenience sampling methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a half-open integer range.
    #[inline]
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator real `rand 0.8` uses
    /// for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut r = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
